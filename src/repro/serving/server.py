"""The asyncio inference server: coalesced serving with hot model swap.

One :class:`ServingServer` wraps one long-lived
:class:`~repro.model.InferenceSession` behind the length-prefixed JSON
protocol of :mod:`repro.serving.protocol`:

- concurrent clients submit ``infer`` requests; a
  :class:`~repro.serving.coalescer.BatchCoalescer` folds everything
  pending into one ``transform_many`` call (lockstep batches sized for
  the worker pool), so serving throughput under concurrency matches one
  big batched request — and every response is **bit-identical** to the
  client calling ``InferenceSession.transform`` itself, because each
  request's documents keep their own seed streams through coalescing;
- every response records ``queue_wait_s`` (coalescer hold time) and
  ``service_s`` (the inference span it rode), aggregated by
  :class:`~repro.serving.stats.LatencyStats` for the ``stats`` op;
- a ``swap`` request loads a new model artifact, **verifies its
  integrity digest and invariants** (phi/totals consistency, finite
  hyper-parameters — see :mod:`repro.integrity`), and only then
  **atomically** repoints subsequent dispatches at a fresh generation
  while in-flight batches drain on the old one — zero dropped requests;
  a corrupt or invalid artifact is a typed ``swap_rejected`` and the
  current generation keeps serving (last-good rollback);
- requests may carry a ``deadline_ms``: entries whose deadline passes
  while queued are **shed** before wasting inference work, a dispatched
  request is answered ``deadline_exceeded`` at its own deadline, and
  every dispatch runs under a watchdog bounded by the riders' latest
  deadline and the server-level ``dispatch_timeout_s`` (so a batch
  carrying deadline-less requests is still bounded) — if the inference
  call is still wedged when the bound passes, the generation is retired
  and a fresh session (lazily rebuilt worker pool) installed, so one
  hung worker cannot poison later requests;
- admission control bounds the queue (typed ``busy`` past
  ``max_pending``) and a :class:`~repro.serving.breaker.CircuitBreaker`
  bounds *failure*: consecutive dispatch failures/timeouts open the
  circuit (typed ``circuit_open`` refusals, no inference attempted)
  until a half-open probe succeeds.  Overload and degraded workers are
  states the protocol speaks, not crashes.

Inference runs on an executor thread, so the event loop keeps accepting,
answering and swapping while the engine computes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any

import numpy as np

from repro import faults
from repro.model import InferenceSession, TopicModel
from repro.serving.breaker import (
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_RESET_TIMEOUT_S,
    OPEN,
    CircuitBreaker,
)
from repro.serving.coalescer import (
    DEFAULT_MAX_PENDING,
    BatchCoalescer,
    PendingRequest,
)
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    read_frame,
    write_frame,
)
from repro.serving.stats import LatencyStats

__all__ = ["ModelGeneration", "ServingServer"]

#: Fold-in schedule a server uses unless configured otherwise.  Fixed
#: per server (not per request): coalesced requests share one lockstep
#: call, so the Gibbs schedule is a deployment knob, like the model.
DEFAULT_SERVE_SWEEPS = 20
DEFAULT_SERVE_BURN_IN = 8

#: Server-level bound on one coalesced dispatch (seconds).  Applies to
#: every batch — including ones carrying deadline-less requests, which
#: per-request deadlines alone would leave unbounded: without it, one
#: wedged executor thread under a no-deadline request blocks the drain
#: loop forever.  Generous next to real fold-in times (well under a
#: second); 0 disables the bound.
DEFAULT_DISPATCH_TIMEOUT_S = 300.0


@dataclass
class ModelGeneration:
    """One deployed model: a session plus the lineage that names it."""

    session: InferenceSession
    model: TopicModel
    generation: str
    lineage: dict[str, Any] | None
    source: str
    index: int
    inflight: int = 0
    retired: bool = False

    def describe(self) -> dict[str, Any]:
        return {
            "generation": self.generation,
            "lineage": self.lineage,
            "source": self.source,
            "num_topics": self.model.num_topics,
            "num_words": self.model.num_words,
            "integrity": (self.model.metadata or {}).get("integrity"),
        }


class ServingServer:
    """Async inference server over one (swappable) frozen model.

    Parameters
    ----------
    model:
        A :class:`~repro.model.TopicModel` or a path to a saved
        artifact (the initial generation; ``swap`` installs later ones).
    host / port:
        Bind address; ``port=0`` picks a free port (see
        :attr:`address` after :meth:`start`).
    num_sweeps / burn_in / batch_docs / num_workers / worker_affinity:
        Forwarded to every generation's
        :class:`~repro.model.InferenceSession`.
    max_pending:
        Admission-control depth: queued (not yet dispatched) requests
        beyond which ``infer`` answers ``busy``.
    breaker_threshold / breaker_reset_s:
        Circuit-breaker knobs: consecutive dispatch failures that open
        the circuit (0 disables) and seconds before the half-open probe.
    dispatch_timeout_s:
        Watchdog bound over any single coalesced dispatch, whether or
        not its riders carry deadlines (0 disables; requests with
        deadlines are always bounded by them regardless).
    """

    def __init__(
        self,
        model: TopicModel | str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        num_sweeps: int = DEFAULT_SERVE_SWEEPS,
        burn_in: int = DEFAULT_SERVE_BURN_IN,
        batch_docs: int | None = None,
        num_workers: int | None = None,
        worker_affinity=None,
        max_pending: int = DEFAULT_MAX_PENDING,
        breaker_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        breaker_reset_s: float = DEFAULT_RESET_TIMEOUT_S,
        dispatch_timeout_s: float | None = DEFAULT_DISPATCH_TIMEOUT_S,
    ):
        if dispatch_timeout_s is not None and dispatch_timeout_s < 0:
            raise ValueError("dispatch_timeout_s must be >= 0")
        self._host = host
        self._port = port
        self._session_kwargs: dict[str, Any] = {
            "num_sweeps": num_sweeps,
            "burn_in": burn_in,
            "num_workers": num_workers,
            "worker_affinity": worker_affinity,
        }
        if batch_docs is not None:
            self._session_kwargs["batch_docs"] = batch_docs
        self._dispatch_timeout_s = (
            float(dispatch_timeout_s) if dispatch_timeout_s else None
        )
        self._gen_counter = 0
        self._retired: list[ModelGeneration] = []
        self._gen = self._make_generation(*self._load_session(model))
        self._stats = LatencyStats()
        self._breaker = CircuitBreaker(breaker_threshold, breaker_reset_s)
        self._coalescer = BatchCoalescer(
            self._dispatch, max_pending, on_expired=self._shed_request
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: dict[asyncio.StreamWriter, asyncio.Future] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_requested = asyncio.Event()
        self._stopped = False
        self.address: tuple[str, int] | None = None

    # -- generations --------------------------------------------------------

    def _load_session(
        self, model: TopicModel | str | Path
    ) -> tuple[TopicModel, InferenceSession, str]:
        """Build a session for ``model`` (artifact load + session setup).

        Runs on an executor thread during ``swap`` so the event loop
        keeps serving the old generation while the new one loads.
        """
        if isinstance(model, (str, Path)):
            source = str(model)
            model = TopicModel.load(model)
        elif isinstance(model, TopicModel):
            source = "<memory>"
        else:
            raise TypeError("model must be a TopicModel or a path")
        session = InferenceSession(model, **self._session_kwargs)
        return model, session, source

    def _make_generation(
        self, model: TopicModel, session: InferenceSession, source: str
    ) -> ModelGeneration:
        self._gen_counter += 1
        lineage = model.lineage
        generation = (lineage or {}).get("generation") or (
            f"gen-{self._gen_counter}"
        )
        return ModelGeneration(
            session=session,
            model=model,
            generation=str(generation),
            lineage=lineage,
            source=source,
            index=self._gen_counter,
        )

    def _reap_retired(self) -> None:
        """Close retired generations whose in-flight batches have drained."""
        still = []
        for gen in self._retired:
            if gen.inflight == 0:
                gen.session.close()
            else:
                still.append(gen)
        self._retired = still

    @property
    def generation(self) -> str:
        """Id of the generation new dispatches go to."""
        return self._gen.generation

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._server is not None:
            return self.address
        self._loop = asyncio.get_running_loop()
        self._coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    def request_shutdown(self) -> None:
        """Ask :meth:`run` to stop after draining in-flight work.

        Safe to call from a signal handler registered on the serving
        event loop (``loop.add_signal_handler``): it only sets an event,
        and :meth:`run` performs the actual drain and teardown.
        """
        self._shutdown_requested.set()

    async def stop(self) -> None:
        """Stop accepting, drain queued requests, release every session."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._coalescer.close()
        # Nudge lingering connections shut and wait for their handlers
        # to finish, so loop teardown never cancels a reader mid-await.
        for writer in list(self._connections):
            writer.close()
        if self._connections:
            await asyncio.gather(
                *self._connections.values(), return_exceptions=True
            )
        self._gen.retired = True
        self._retired.append(self._gen)
        self._reap_retired()

    async def run(self, on_ready=None) -> None:
        """Serve until a ``shutdown`` request (or cancellation), then stop."""
        await self.start()
        if on_ready is not None:
            on_ready(self.address)
        try:
            await self._shutdown_requested.wait()
        finally:
            await self.stop()

    async def __aenter__(self) -> ServingServer:
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- connection handling ------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # One write lock per connection: responses for pipelined
        # requests complete out of order, and frames must not interleave.
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        done = asyncio.get_running_loop().create_future()
        self._connections[writer] = done
        try:
            while True:
                try:
                    msg = await read_frame(reader)
                except FrameError as exc:
                    await self._write(
                        writer, lock,
                        {"type": "error", "error": "bad_frame",
                         "message": str(exc)},
                    )
                    break
                if msg is None:
                    break
                if await self._handle_message(msg, writer, lock, tasks):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._connections.pop(writer, None)
            if not done.done():
                done.set_result(None)

    async def _write(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, message: dict
    ) -> None:
        try:
            async with lock:
                await write_frame(writer, message)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing left to tell it

    async def _handle_message(
        self,
        msg: dict,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        tasks: set[asyncio.Task],
    ) -> bool:
        """Handle one request; True ends the connection's read loop."""
        op = msg.get("op")
        rid = msg.get("id")
        if op == "ping":
            await self._write(writer, lock, {
                "type": "pong", "id": rid, "version": PROTOCOL_VERSION,
                "generation": self._gen.generation,
            })
        elif op == "infer":
            reply, request = self._admit(msg)
            if reply is not None:
                await self._write(writer, lock, reply)
            else:
                task = asyncio.get_running_loop().create_task(
                    self._answer(request, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        elif op == "swap":
            await self._handle_swap(msg, writer, lock)
        elif op == "stats":
            await self._write(writer, lock, {
                "type": "stats", "id": rid,
                "version": PROTOCOL_VERSION,
                "model": self._gen.describe(),
                "pending": self._coalescer.depth,
                "max_pending": self._coalescer.max_pending,
                "num_sweeps": self._session_kwargs["num_sweeps"],
                "burn_in": self._session_kwargs["burn_in"],
                "num_workers": self._gen.session.num_workers,
                "latency": self._stats.snapshot(),
                "breaker": self._breaker.snapshot(),
            })
        elif op == "shutdown":
            await self._write(writer, lock, {"type": "bye", "id": rid})
            self.request_shutdown()
            return True
        else:
            await self._write(writer, lock, {
                "type": "error", "id": rid, "error": "unknown_op",
                "message": f"unknown op {op!r}",
            })
        return False

    # -- infer path ---------------------------------------------------------

    def _admit(
        self, msg: dict
    ) -> tuple[dict | None, PendingRequest | None]:
        """Validate + enqueue one infer request.

        Returns ``(immediate reply, None)`` for rejections (invalid,
        busy, shutting down) or ``(None, request)`` once queued.
        """
        rid = msg.get("id")
        loop = asyncio.get_running_loop()

        # Fail fast while the circuit is open: a round-trip refusal, not
        # an inference attempt against a path that keeps failing.  A
        # request admitted out of the open state IS the half-open probe;
        # every path on which it can die before reaching a dispatch
        # outcome must hand it back (probe_aborted), or the breaker
        # waits in half-open — refusing all traffic — forever.
        now = loop.time()
        is_probe = self._breaker.state == OPEN

        def refuse(error: str, message: str) -> tuple[dict, None]:
            if is_probe:
                self._breaker.probe_aborted(now)
            self._stats.record_error()
            return (
                {"type": "error", "id": rid, "error": error,
                 "message": message},
                None,
            )

        if not self._breaker.allow(now):
            self._stats.record_circuit_rejected()
            return (
                {"type": "error", "id": rid, "error": "circuit_open",
                 "message": (
                     f"circuit breaker open after "
                     f"{self._breaker.consecutive_failures} consecutive "
                     f"dispatch failures; retry in "
                     f"{self._breaker.retry_after_s(now):.2f}s"
                 ),
                 "retry_after_s": self._breaker.retry_after_s(now)},
                None,
            )
        deadline_ms = msg.get("deadline_ms")
        deadline_at = None
        if deadline_ms is not None:
            if (
                not isinstance(deadline_ms, (int, float))
                or isinstance(deadline_ms, bool)
                or not np.isfinite(deadline_ms)
                or deadline_ms <= 0
            ):
                return refuse(
                    "invalid_request",
                    "deadline_ms must be a positive number of milliseconds",
                )
            deadline_at = now + float(deadline_ms) / 1000.0
        raw = msg.get("docs")
        if not isinstance(raw, list) or not raw:
            return refuse(
                "invalid_request", "docs must be a non-empty list of "
                "token-id lists",
            )
        seed = msg.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            return refuse(
                "invalid_request", "seed must be a non-negative integer"
            )
        docs: list[np.ndarray] = []
        num_words = self._gen.model.num_words
        for d in raw:
            if not isinstance(d, list):
                return refuse(
                    "invalid_request", "each document must be a list of "
                    "token ids",
                )
            try:
                arr = np.asarray(d, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                return refuse(
                    "invalid_request", "token ids must be integers"
                )
            if arr.ndim != 1:
                return refuse(
                    "invalid_request", "each document must be a flat list"
                )
            if arr.size and (arr.min() < 0 or arr.max() >= num_words):
                return refuse(
                    "invalid_request",
                    f"word id out of the served vocabulary "
                    f"(V={num_words})",
                )
            docs.append(arr)
        request = PendingRequest(
            docs=docs,
            seed=seed,
            future=loop.create_future(),
            enqueued_at=loop.time(),
            request_id=rid,
            deadline_at=deadline_at,
        )
        if is_probe:
            # Queued as the probe: if it is shed before dispatch, the
            # shed path hands it back to the breaker (_probe_lost).
            request.meta["breaker_probe"] = True
        try:
            accepted = self._coalescer.submit(request)
        except RuntimeError:
            return refuse("shutting_down", "server is shutting down")
        if not accepted:
            if is_probe:
                self._breaker.probe_aborted(now)
            self._stats.record_busy()
            return (
                {"type": "busy", "id": rid,
                 "pending": self._coalescer.depth,
                 "max_pending": self._coalescer.max_pending},
                None,
            )
        if deadline_at is not None:
            # Armed at admission, not at dispatch: a request stuck in the
            # queue behind a slow dispatch is answered at its OWN
            # deadline — the drain loop never gates the typed reply.
            timer = loop.call_at(deadline_at, self._expire_request, request)
            request.future.add_done_callback(lambda _f: timer.cancel())
        return None, request

    async def _answer(
        self,
        request: PendingRequest,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        try:
            reply = await request.future
        except Exception as exc:  # coalescer backstop path
            self._stats.record_error()
            reply = {
                "type": "error", "id": request.request_id,
                "error": "inference_failed", "message": str(exc),
            }
        await self._write(writer, lock, reply)

    def _expire_reply(self, req: PendingRequest, now: float) -> dict:
        waited_ms = (now - req.enqueued_at) * 1e3
        return {
            "type": "error", "id": req.request_id,
            "error": "deadline_exceeded",
            "message": (
                f"request deadline passed after {waited_ms:.1f} ms "
                f"on the server"
            ),
        }

    def _probe_lost(self, req: PendingRequest) -> None:
        """Hand a half-open probe that died pre-dispatch back to the breaker.

        A probe answered before it reached a dispatch outcome (shed by
        its deadline while queued, or bounced at dispatch admission)
        proved nothing; reverting the breaker to open re-arms the next
        request as a fresh probe.  Once dispatched, the dispatch itself
        records success or failure, so the mark is left alone.
        """
        if req.meta.get("dispatched"):
            return
        if req.meta.pop("breaker_probe", None):
            loop = self._loop or asyncio.get_event_loop()
            self._breaker.probe_aborted(loop.time())

    def _shed_request(self, req: PendingRequest) -> None:
        """Coalescer shed hook: answer an expired *queued* request."""
        if req.future.done():
            return
        self._probe_lost(req)
        self._stats.record_shed()
        loop = self._loop or asyncio.get_event_loop()
        req.future.set_result(self._expire_reply(req, loop.time()))

    def _expire_request(self, req: PendingRequest) -> None:
        """Deadline timer: answer a request the moment its deadline passes.

        Counted as *shed* while the request is still queued (no inference
        was spent on it) and as *deadline_exceeded* once dispatched.
        """
        if req.future.done():
            return
        if req.meta.get("dispatched"):
            self._stats.record_deadline_exceeded()
        else:
            self._probe_lost(req)
            self._stats.record_shed()
        loop = self._loop or asyncio.get_event_loop()
        req.future.set_result(self._expire_reply(req, loop.time()))

    def _compute(self, gen: ModelGeneration, requests: list) -> list:
        """The executor-thread side of a dispatch.

        The ``serve_hang`` chaos hook wedges *here* — on the thread,
        past the event loop's reach — so only the deadline watchdog can
        answer the affected clients.
        """
        faults.sleep_if("serve_hang", op="infer")
        return gen.session.transform_many(requests)

    def _heal_generation(self, gen: ModelGeneration) -> None:
        """Replace a generation whose dispatch the watchdog abandoned.

        The abandoned executor thread may still be inside
        ``transform_many`` on ``gen``'s session (its fold-in workspace
        is not thread-safe), so the session cannot be reused: retire it
        — the inflight refcount keeps it alive until the thread drains,
        and :meth:`_reap_retired` then closes it, tearing down any
        wedged worker pool — and install a fresh session over the same
        model.  The new session's pool is built lazily on the next
        dispatch (the PR-6 failure lifecycle), so one wedged worker
        cannot poison subsequent requests.
        """
        if gen.retired:
            return  # an intervening swap already replaced it
        gen.retired = True
        self._retired.append(gen)
        if self._gen is gen:
            session = InferenceSession(gen.model, **self._session_kwargs)
            self._gen = self._make_generation(gen.model, session, gen.source)

    async def _dispatch(self, batch: list[PendingRequest]) -> None:
        """Run one coalesced inference for everything pending.

        Snapshots the current generation once: a swap that lands while
        this dispatch computes only affects later dispatches, and the
        generation's inflight count keeps its arena alive until the
        batch drains.

        Deadline handling: each deadlined request was given a timer at
        admission that answers it (typed ``deadline_exceeded``) the
        moment its deadline passes — queued, riding this dispatch, or
        mid-compute, no client ever blocks past its deadline.  The
        executor call runs under ``asyncio.wait_for`` bounded by the
        riders' latest deadline (when every rider has one) and by the
        server-level ``dispatch_timeout_s`` — so a batch carrying
        deadline-less requests is still bounded and one wedged thread
        cannot stall the drain loop forever.  The watchdog firing means
        the inference thread is wedged, so the generation is retired and
        healed (:meth:`_heal_generation`) and the thread's eventual
        result discarded.
        """
        loop = self._loop if self._loop is not None else (
            asyncio.get_running_loop()
        )
        gen = self._gen
        valid: list[PendingRequest] = []
        now = loop.time()
        for req in batch:
            if req.future.done():
                continue  # already answered (shed raced the drain)
            if req.expired(now):
                self._expire_request(req)
                continue
            # Re-check vocabulary bounds against the generation actually
            # answering: a swap between enqueue and dispatch may have
            # shrunk V.
            if any(
                d.size and int(d.max()) >= gen.model.num_words
                for d in req.docs
            ):
                self._probe_lost(req)
                self._stats.record_error()
                req.future.set_result({
                    "type": "error", "id": req.request_id,
                    "error": "vocabulary_mismatch",
                    "message": (
                        f"word id out of generation "
                        f"{gen.generation}'s vocabulary "
                        f"(V={gen.model.num_words})"
                    ),
                    "generation": gen.generation,
                })
            else:
                req.meta["dispatched"] = True
                valid.append(req)
        if not valid:
            return
        gen.inflight += 1
        released = False

        def release(_fut=None) -> None:
            # Runs exactly once — directly when the dispatch owns the
            # executor future's lifetime, or from its done-callback when
            # the watchdog abandoned it (the thread may outlive us, and
            # the retired session must not be closed under it).
            nonlocal released
            if released:
                return
            released = True
            if _fut is not None and not _fut.cancelled():
                _fut.exception()  # retrieved: no "never retrieved" noise
            gen.inflight -= 1
            self._reap_retired()

        # Deadline timers were armed at admission (each request answers
        # at its own deadline even mid-compute); here only the watchdog
        # bound over the whole dispatch remains to compute.
        fut: asyncio.Future | None = None
        timed_out = False
        try:
            # Chaos hooks (no-ops unless armed; see repro.faults):
            # serve_slow injects tail latency, serve_error exercises the
            # typed inference_failed path end-to-end (serve_hang lives
            # in _compute, on the executor thread).
            delay = faults.delay_if("serve_slow", op="infer")
            if delay:
                await asyncio.sleep(delay)
            faults.raise_if("serve_error", op="infer")
            if all(req.future.done() for req in valid):
                # Every rider's deadline lapsed during the delay: the
                # timers already answered them — nothing left to compute,
                # but the dispatch still counts as a timeout against the
                # breaker (the server is too slow for its clients).
                self._breaker.record_failure(loop.time())
                return
            requests = [(req.docs, req.seed) for req in valid]
            deadlines = [
                req.deadline_at for req in valid
                if req.deadline_at is not None
            ]
            guards = []
            if deadlines and len(deadlines) == len(valid):
                guards.append(max(deadlines) - loop.time())
            if self._dispatch_timeout_s is not None:
                guards.append(self._dispatch_timeout_s)
            hang_guard = min(guards) if guards else None
            if hang_guard is not None and hang_guard <= 0.0:
                # Every rider's deadline lapsed while the batch was
                # being assembled (no await ran, so the admission timers
                # haven't fired yet).  Answer them and skip the dispatch
                # entirely: arming a ~0 watchdog here would retire a
                # perfectly healthy generation.  Still a timeout against
                # the breaker — the server was too slow for its clients.
                self._breaker.record_failure(loop.time())
                for req in valid:
                    if not req.future.done():
                        self._expire_request(req)
                return
            dispatched_at = loop.time()
            fut = loop.run_in_executor(
                None, partial(self._compute, gen, requests)
            )
            try:
                thetas = await asyncio.wait_for(
                    asyncio.shield(fut), hang_guard
                )
            except asyncio.TimeoutError:
                timed_out = True
                raise
            service_s = loop.time() - dispatched_at
        except asyncio.TimeoutError:
            # Watchdog: the inference thread is wedged past the dispatch
            # bound.  Deadlined riders were answered by their admission
            # timers; anyone left (no deadline, or a deadline beyond the
            # server bound) fails typed rather than waiting on a wedged
            # thread.  Tear the generation down so the next dispatch
            # gets a clean one.
            self._stats.record_watchdog()
            now_wd = loop.time()
            self._breaker.record_failure(now_wd)
            for req in valid:
                if req.future.done():
                    continue
                if req.expired(now_wd):
                    self._expire_request(req)
                else:
                    self._stats.record_error()
                    req.future.set_result({
                        "type": "error", "id": req.request_id,
                        "error": "inference_failed",
                        "message": (
                            f"dispatch watchdog fired after "
                            f"{hang_guard:.1f}s: inference is wedged; "
                            f"the generation was retired and a fresh "
                            f"session installed"
                        ),
                        "generation": gen.generation,
                    })
            self._heal_generation(gen)
        except Exception as exc:
            self._breaker.record_failure(loop.time())
            for req in valid:
                if req.future.done():
                    continue
                self._stats.record_error()
                req.future.set_result({
                    "type": "error", "id": req.request_id,
                    "error": "inference_failed", "message": str(exc),
                    "generation": gen.generation,
                })
        else:
            self._breaker.record_success()
            for req, theta in zip(valid, thetas):
                if req.future.done():
                    continue  # its deadline passed mid-compute
                queue_wait_s = dispatched_at - req.enqueued_at
                self._stats.record(queue_wait_s, service_s)
                req.future.set_result({
                    "type": "result", "id": req.request_id,
                    "theta": theta.tolist(),
                    "generation": gen.generation,
                    "lineage": gen.lineage,
                    "queue_wait_s": queue_wait_s,
                    "service_s": service_s,
                    "coalesced_requests": len(valid),
                })
        finally:
            if timed_out and fut is not None:
                fut.add_done_callback(release)
            else:
                release()

    # -- hot swap -----------------------------------------------------------

    @staticmethod
    def _check_swap_invariants(model: TopicModel) -> None:
        """Cheap pre-repoint sanity check on a candidate generation.

        The artifact loader already verified the payload digest and the
        :class:`~repro.model.TopicModel` constructor its structural
        invariants; this re-asserts the serving-critical ones (and adds
        finiteness, which positivity checks alone let through) so a swap
        can never repoint at a model that would corrupt every answer.
        """
        if not (np.isfinite(model.alpha) and np.isfinite(model.beta)):
            raise ValueError(
                f"non-finite hyper-parameters (alpha={model.alpha}, "
                f"beta={model.beta})"
            )
        phi = np.asarray(model.phi)
        if np.any(phi < 0):
            raise ValueError("negative phi counts")
        if not np.array_equal(
            np.asarray(model.topic_totals), phi.sum(axis=1)
        ):
            raise ValueError("topic totals do not match phi row sums")

    async def _handle_swap(
        self, msg: dict, writer: asyncio.StreamWriter, lock: asyncio.Lock
    ) -> None:
        rid = msg.get("id")
        path = msg.get("path")
        if not isinstance(path, str) or not path:
            self._stats.record_error()
            await self._write(writer, lock, {
                "type": "error", "id": rid, "error": "invalid_request",
                "message": "swap needs a 'path' to a model artifact",
            })
            return
        loop = asyncio.get_running_loop()
        try:
            # Artifact load (digest-verified) + invariant check + session
            # build, all off the event loop: the old generation keeps
            # answering while the candidate warms up — and keeps serving
            # (last-good rollback) if the candidate is rejected.
            def load_and_check():
                loaded = self._load_session(path)
                self._check_swap_invariants(loaded[0])
                return loaded

            model, session, source = await loop.run_in_executor(
                None, load_and_check
            )
        except Exception as exc:
            self._stats.record_swap_rejected()
            await self._write(writer, lock, {
                "type": "error", "id": rid, "error": "swap_rejected",
                "message": str(exc),
                "reason": type(exc).__name__,
                "generation": self._gen.generation,
            })
            return
        new_gen = self._make_generation(model, session, source)
        old = self._gen
        self._gen = new_gen  # atomic repoint: later dispatches use new_gen
        old.retired = True
        self._retired.append(old)
        self._reap_retired()  # close now if nothing is in flight on it
        self._stats.record_swap()
        await self._write(writer, lock, {
            "type": "swapped", "id": rid,
            "generation": new_gen.generation,
            "previous": old.generation,
            "lineage": new_gen.lineage,
            "model": new_gen.describe(),
        })
