"""The batch coalescer: fold concurrent requests into lockstep dispatches.

The serving engine (:meth:`~repro.model.InferenceSession.transform_many`)
is fastest when it folds many documents in per call — one set of
lockstep batches sized for the worker pool.  Concurrent clients each
bring a handful of documents, so the server queues them here and a
single drain loop dispatches **everything currently pending as one
coalesced call**: requests that arrive while a dispatch is running
accumulate and ride the next one.  Under light load a request dispatches
alone immediately; under heavy load dispatches grow to whatever
accumulated, which is exactly the batch-narrowing sweet spot — the
engine splits the coalesced document set evenly over its workers.

Admission control is a bounded queue: :meth:`BatchCoalescer.submit`
refuses (returns False) once ``max_pending`` requests are waiting, and
the server turns that refusal into a typed ``busy`` response.  Overload
therefore degrades into fast, explicit rejections instead of unbounded
buffering — degraded service is a first-class state, not a crash.

Deadline-aware load shedding: a request may carry an absolute
``deadline_at`` (event-loop clock).  Entries whose deadline has already
passed are evicted **oldest first** — before each dispatch (no inference
work is wasted on an answer nobody is waiting for) and, under pressure,
at admission time (expired entries make room for a fresh request instead
of bouncing it with ``busy``).  Evicted requests go to the server's
``on_expired`` callback, which answers them with a typed
``deadline_exceeded`` response.
"""

from __future__ import annotations

import asyncio
from collections import deque
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["PendingRequest", "BatchCoalescer", "DEFAULT_MAX_PENDING"]

#: Default admission-control depth (queued requests, not documents).
DEFAULT_MAX_PENDING = 64


@dataclass
class PendingRequest:
    """One client request waiting for (or riding) a coalesced dispatch."""

    docs: list[np.ndarray]
    seed: int
    future: asyncio.Future
    enqueued_at: float
    request_id: Any = None
    #: Absolute event-loop time after which the client has given up;
    #: ``None`` = no deadline (wait as long as it takes).
    deadline_at: float | None = None
    meta: dict = field(default_factory=dict)

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now >= self.deadline_at

    @property
    def num_docs(self) -> int:
        return len(self.docs)


class BatchCoalescer:
    """Admission-controlled queue draining into coalesced dispatches.

    Parameters
    ----------
    dispatch:
        ``async (list[PendingRequest]) -> None``; must resolve every
        request's future (result or exception).  Called from a single
        drain task, so dispatches never overlap — the engine runs one
        coalesced inference at a time and pending work accumulates
        behind it.
    max_pending:
        Queue depth above which :meth:`submit` refuses.
    on_expired:
        ``(PendingRequest) -> None`` invoked for every queue entry shed
        because its ``deadline_at`` passed; must resolve the request's
        future.  ``None`` disables shedding (deadlines then only bound
        the dispatch itself).
    """

    def __init__(
        self,
        dispatch: Callable[[list[PendingRequest]], Awaitable[None]],
        max_pending: int = DEFAULT_MAX_PENDING,
        on_expired: Callable[[PendingRequest], None] | None = None,
    ):
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self._dispatch = dispatch
        self.max_pending = int(max_pending)
        self._on_expired = on_expired
        self._pending: deque[PendingRequest] = deque()
        self._wakeup = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False

    # -- producer side ------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently queued (excludes the dispatch in flight)."""
        return len(self._pending)

    def submit(self, request: PendingRequest) -> bool:
        """Enqueue; False when the queue is at ``max_pending`` (busy).

        A full queue first sheds already-expired entries: a fresh
        request displacing work whose deadline has passed is strictly
        better than bouncing it while dead work occupies the queue.
        """
        if self._closed:
            raise RuntimeError("coalescer is closed")
        if len(self._pending) >= self.max_pending:
            self.shed_expired()
        if len(self._pending) >= self.max_pending:
            return False
        self._pending.append(request)
        self._wakeup.set()
        return True

    def shed_expired(self) -> int:
        """Evict queued entries whose deadline passed, oldest first.

        Each evicted request is handed to ``on_expired`` (which answers
        it); returns how many were shed.  No-op without the callback.
        """
        if self._on_expired is None or not self._pending:
            return 0
        now = asyncio.get_running_loop().time()
        shed = 0
        survivors: deque[PendingRequest] = deque()
        while self._pending:
            req = self._pending.popleft()  # oldest first
            if req.expired(now) and not req.future.done():
                self._on_expired(req)
                shed += 1
            else:
                survivors.append(req)
        self._pending = survivors
        return shed

    # -- drain loop ---------------------------------------------------------

    def start(self) -> None:
        """Start the drain task on the running loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-serving-coalescer"
            )

    async def close(self) -> None:
        """Stop accepting, drain everything already queued, then return."""
        if self._closed:
            if self._task is not None:
                await self._task
            return
        self._closed = True
        self._wakeup.set()
        if self._task is not None:
            await self._task

    async def _run(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            while self._pending:
                # Shed dead work before spending inference on it: anyone
                # whose deadline lapsed while queued gets the typed
                # answer now and never rides a dispatch.
                self.shed_expired()
                batch = list(self._pending)
                self._pending.clear()
                if not batch:
                    continue
                try:
                    await self._dispatch(batch)
                except Exception as exc:
                    # The dispatcher resolves futures itself; this is a
                    # backstop so a dispatcher bug fails the affected
                    # requests instead of hanging them and killing the
                    # drain loop for everyone after them.
                    for req in batch:
                        if not req.future.done():
                            req.future.set_exception(exc)
            if self._closed:
                return
