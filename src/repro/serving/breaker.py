"""Circuit breaker: stop hammering an inference path that keeps failing.

A bare ``busy`` reject protects the queue from *depth*; it does nothing
about a server whose dispatches are failing — clients keep paying full
inference latency to receive ``inference_failed``, and a wedged pool
keeps being rebuilt under load.  :class:`CircuitBreaker` is the standard
three-state remedy, driven entirely by the dispatch outcomes the server
already observes:

- **closed** (healthy): requests flow; consecutive dispatch failures
  (typed ``inference_failed`` or a deadline-watchdog teardown) are
  counted, and reaching ``failure_threshold`` trips the breaker;
- **open**: admission refuses instantly with a typed ``circuit_open``
  response (retryable, like ``busy``) — failing fast costs the client a
  round-trip, not an inference timeout — until ``reset_timeout_s``
  elapses;
- **half-open**: exactly one probe request is admitted; its dispatch
  succeeding closes the circuit (counters cleared), failing re-opens it
  for another full ``reset_timeout_s``.  A probe that dies *before*
  reaching a dispatch outcome (refused at validation, bounced busy,
  shed by its own deadline while queued) proved nothing about the
  inference path — the caller reports it via :meth:`probe_aborted`,
  which reverts to open while keeping the original open timestamp, so
  the very next request is admitted as a fresh probe instead of the
  breaker waiting in half-open forever for an outcome that will never
  arrive.

Timestamps come from the caller (the serving event loop's clock), so the
breaker itself is deterministic and trivially testable.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "CircuitBreaker",
    "DEFAULT_FAILURE_THRESHOLD",
    "DEFAULT_RESET_TIMEOUT_S",
]

#: Consecutive dispatch failures that trip the breaker.
DEFAULT_FAILURE_THRESHOLD = 5

#: Seconds an open breaker waits before admitting a half-open probe.
DEFAULT_RESET_TIMEOUT_S = 2.0

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe.

    ``failure_threshold=0`` disables the breaker entirely (it never
    opens) — the escape hatch for deployments that want PR-6 behaviour.
    """

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        reset_timeout_s: float = DEFAULT_RESET_TIMEOUT_S,
    ):
        if failure_threshold < 0:
            raise ValueError("failure_threshold must be >= 0")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.times_opened = 0

    def allow(self, now: float) -> bool:
        """May a request be admitted at time ``now``?

        In the open state, the first call after ``reset_timeout_s``
        transitions to half-open and admits that caller as the probe;
        everyone else is refused until the probe's outcome arrives.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at >= self.reset_timeout_s:
                self.state = HALF_OPEN
                return True
            return False
        return False  # half-open: probe already in flight

    def record_success(self) -> None:
        """A dispatch completed: close the circuit, clear the count."""
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def probe_aborted(self, now: float) -> None:
        """The half-open probe died without a dispatch outcome.

        Neither a success nor a failure: the probe never exercised the
        inference path (it was refused as invalid, bounced ``busy``, or
        shed by its own deadline while queued).  Revert to open but keep
        the original ``opened_at``, so :meth:`allow` admits the next
        caller as a fresh probe immediately — without this, a single
        lost probe would leave the breaker half-open (refusing everyone)
        until restart.
        """
        if self.state != HALF_OPEN:
            return
        self.state = OPEN
        if self.opened_at is None:  # defensive; half-open implies set
            self.opened_at = now - self.reset_timeout_s

    def record_failure(self, now: float) -> None:
        """A dispatch failed or timed out: count it, maybe trip."""
        if self.state == HALF_OPEN:
            # The probe failed: straight back to open, full timeout.
            self.state = OPEN
            self.opened_at = now
            self.times_opened += 1
            return
        self.consecutive_failures += 1
        if (
            self.failure_threshold
            and self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = OPEN
            self.opened_at = now
            self.times_opened += 1

    def retry_after_s(self, now: float) -> float:
        """Seconds until an open breaker admits its probe (0 if not open)."""
        if self.state != OPEN or self.opened_at is None:
            return 0.0
        return max(0.0, self.reset_timeout_s - (now - self.opened_at))

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state for the ``stats`` op."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "reset_timeout_s": self.reset_timeout_s,
            "times_opened": self.times_opened,
        }
