"""Client for the serving protocol: blocking calls over one connection.

:class:`ServingClient` speaks :mod:`repro.serving.protocol` with one
outstanding request at a time — submit a frame, the next frame read is
its reply.  That sequential discipline keeps the client tiny (no
response demultiplexing) while still exercising the server's
concurrency: many *clients*, each sequential, is exactly the open-loop
shape the coalescer folds together.  Typed outcomes:

- :meth:`ServingClient.infer` returns an :class:`InferReply` (theta plus
  the generation that answered and the server-measured latency split);
- a ``busy`` response raises :class:`ServerBusy` (retryable overload);
- a ``circuit_open`` response raises :class:`CircuitOpen` (the server's
  breaker is refusing work while its inference path recovers — also
  retryable);
- a ``deadline_exceeded`` response raises :class:`DeadlineExceeded`
  (the ``deadline_ms`` this client attached passed on the server —
  **not** retried: the budget is spent);
- any other ``error`` response raises :class:`ServingError` carrying
  the server's typed error code.

Robustness (both opt-in, defaults preserve fail-fast semantics):

- ``timeout=`` bounds the connect and every individual request;
- ``retries=`` re-attempts ``busy`` responses, transient connection
  errors and request timeouts with jittered exponential backoff,
  reconnecting as needed.  Every protocol operation is idempotent
  server-side (``infer`` is a pure function of docs+seed+generation, the
  rest are reads or at-most-once controls), so a resend after an
  ambiguous failure cannot corrupt anything.
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.serving.protocol import read_frame, write_frame

__all__ = [
    "ServingClient",
    "InferReply",
    "ServingError",
    "ServerBusy",
    "CircuitOpen",
    "DeadlineExceeded",
]


class ServingError(RuntimeError):
    """The server answered with a typed ``error`` response."""

    def __init__(self, error: str, message: str):
        super().__init__(f"{error}: {message}")
        self.error = error


class ServerBusy(ServingError):
    """Admission control refused the request; retry later."""

    def __init__(self, pending: int, max_pending: int):
        super().__init__(
            "busy",
            f"server queue is full ({pending}/{max_pending} pending)",
        )
        self.pending = pending
        self.max_pending = max_pending


class CircuitOpen(ServingError):
    """The server's circuit breaker is open; retry after it cools down."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__("circuit_open", message)
        self.retry_after_s = retry_after_s


class DeadlineExceeded(ServingError):
    """The request's ``deadline_ms`` passed on the server (shed or
    answered by the dispatch watchdog).  Deterministically final for
    this request — never retried automatically."""

    def __init__(self, message: str):
        super().__init__("deadline_exceeded", message)


@dataclass(frozen=True)
class InferReply:
    """One answered inference: theta plus serving provenance."""

    theta: np.ndarray
    generation: str
    lineage: dict[str, Any] | None
    queue_wait_s: float
    service_s: float
    coalesced_requests: int


#: Base/ceiling of the retry backoff, in seconds (exponential, jittered).
RETRY_BACKOFF_BASE = 0.05
RETRY_BACKOFF_MAX = 2.0

#: Failures worth a retry: overload (queue-full or open breaker) and
#: transport-level trouble.  Other typed server errors — including
#: ``deadline_exceeded`` — are deterministic and never retried.
_TRANSIENT = (
    ServerBusy, CircuitOpen, ConnectionError, OSError, asyncio.TimeoutError,
)


class ServingClient:
    """One sequential connection to a :class:`~repro.serving.ServingServer`.

    ``timeout`` bounds the connect and each request in seconds (``None``
    waits forever); ``retries`` allows that many re-attempts of a failed
    request on :class:`ServerBusy`, transient connection errors and
    timeouts, with jittered exponential backoff and automatic reconnect.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        host: str | None = None,
        port: int | None = None,
        timeout: float | None = None,
        retries: int = 0,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self.timeout = timeout
        self.retries = retries
        self._request_counter = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout: float | None = None,
        retries: int = 0,
    ) -> ServingClient:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        return cls(
            reader, writer,
            host=host, port=port, timeout=timeout, retries=retries,
        )

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> ServingClient:
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _reconnect(self) -> None:
        await self.close()
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port), self.timeout
        )

    async def _send_and_receive(self, message: dict) -> dict:
        await write_frame(self._writer, message)
        reply = await read_frame(self._reader)
        if reply is None:
            raise ConnectionError("server closed the connection")
        if reply.get("type") == "busy":
            raise ServerBusy(
                int(reply.get("pending", -1)),
                int(reply.get("max_pending", -1)),
            )
        if reply.get("type") == "error":
            error = str(reply.get("error", "unknown"))
            message = str(reply.get("message", ""))
            if error == "circuit_open":
                raise CircuitOpen(
                    message, float(reply.get("retry_after_s", 0.0))
                )
            if error == "deadline_exceeded":
                raise DeadlineExceeded(message)
            raise ServingError(error, message)
        return reply

    async def _roundtrip(self, message: dict) -> dict:
        """One request, one reply (single outstanding request per client).

        With ``retries > 0``, transient failures back off
        ``min(base * 2**attempt, max) * U(0.5, 1.0)`` seconds (jitter
        decorrelates a thundering herd of retrying clients) and try
        again — reconnecting first if the transport broke.
        """
        self._request_counter += 1
        message = {"id": self._request_counter, **message}
        attempt = 0
        while True:
            try:
                return await asyncio.wait_for(
                    self._send_and_receive(message), self.timeout
                )
            except _TRANSIENT as exc:
                if attempt >= self.retries:
                    raise
                backoff = min(
                    RETRY_BACKOFF_BASE * (2 ** attempt), RETRY_BACKOFF_MAX
                ) * (0.5 + random.random() / 2)  # repro: noqa[RPR102] retry jitter must differ across client processes; determinism here would re-synchronise the thundering herd
                attempt += 1
                await asyncio.sleep(backoff)
                if not isinstance(exc, ServerBusy):
                    # The connection state is unknown (half-written
                    # frame, dead socket, timed-out read): start fresh.
                    if self._host is None:
                        raise
                    try:
                        await self._reconnect()
                    except _TRANSIENT:
                        continue  # next attempt retries the connect too

    async def ping(self) -> dict:
        return await self._roundtrip({"op": "ping"})

    async def infer(
        self,
        docs: Sequence[Sequence[int]] | Sequence[np.ndarray],
        seed: int = 0,
        *,
        deadline_ms: float | None = None,
    ) -> InferReply:
        """Topic mixtures for ``docs``: bit-identical to in-process
        ``InferenceSession.transform(docs, seed=seed)`` on the served
        generation.

        ``deadline_ms`` rides with the request: the server sheds it
        (typed ``deadline_exceeded`` -> :class:`DeadlineExceeded`)
        rather than answer after the deadline — queued, mid-dispatch,
        or wedged, the client hears back by its deadline plus one
        network round-trip.
        """
        payload = [
            np.asarray(d, dtype=np.int64).ravel().tolist() for d in docs
        ]
        message = {"op": "infer", "docs": payload, "seed": int(seed)}
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
        reply = await self._roundtrip(message)
        return InferReply(
            theta=np.asarray(reply["theta"], dtype=np.float64),
            generation=str(reply["generation"]),
            lineage=reply.get("lineage"),
            queue_wait_s=float(reply["queue_wait_s"]),
            service_s=float(reply["service_s"]),
            coalesced_requests=int(reply["coalesced_requests"]),
        )

    async def swap(self, path: str) -> dict:
        """Hot-swap the served model to the artifact at ``path``."""
        return await self._roundtrip({"op": "swap", "path": str(path)})

    async def stats(self) -> dict:
        return await self._roundtrip({"op": "stats"})

    async def shutdown(self) -> dict:
        """Ask the server to stop (it drains in-flight work first)."""
        return await self._roundtrip({"op": "shutdown"})
