"""Client for the serving protocol: blocking calls over one connection.

:class:`ServingClient` speaks :mod:`repro.serving.protocol` with one
outstanding request at a time — submit a frame, the next frame read is
its reply.  That sequential discipline keeps the client tiny (no
response demultiplexing) while still exercising the server's
concurrency: many *clients*, each sequential, is exactly the open-loop
shape the coalescer folds together.  Typed outcomes:

- :meth:`ServingClient.infer` returns an :class:`InferReply` (theta plus
  the generation that answered and the server-measured latency split);
- a ``busy`` response raises :class:`ServerBusy` (retryable overload);
- any ``error`` response raises :class:`ServingError` carrying the
  server's typed error code.
"""

from __future__ import annotations

import asyncio
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.serving.protocol import read_frame, write_frame

__all__ = ["ServingClient", "InferReply", "ServingError", "ServerBusy"]


class ServingError(RuntimeError):
    """The server answered with a typed ``error`` response."""

    def __init__(self, error: str, message: str):
        super().__init__(f"{error}: {message}")
        self.error = error


class ServerBusy(ServingError):
    """Admission control refused the request; retry later."""

    def __init__(self, pending: int, max_pending: int):
        super().__init__(
            "busy",
            f"server queue is full ({pending}/{max_pending} pending)",
        )
        self.pending = pending
        self.max_pending = max_pending


@dataclass(frozen=True)
class InferReply:
    """One answered inference: theta plus serving provenance."""

    theta: np.ndarray
    generation: str
    lineage: dict[str, Any] | None
    queue_wait_s: float
    service_s: float
    coalesced_requests: int


class ServingClient:
    """One sequential connection to a :class:`~repro.serving.ServingServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._request_counter = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServingClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "ServingClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _roundtrip(self, message: dict) -> dict:
        """One request, one reply (single outstanding request per client)."""
        self._request_counter += 1
        message = {"id": self._request_counter, **message}
        await write_frame(self._writer, message)
        reply = await read_frame(self._reader)
        if reply is None:
            raise ConnectionError("server closed the connection")
        if reply.get("type") == "busy":
            raise ServerBusy(
                int(reply.get("pending", -1)),
                int(reply.get("max_pending", -1)),
            )
        if reply.get("type") == "error":
            raise ServingError(
                str(reply.get("error", "unknown")),
                str(reply.get("message", "")),
            )
        return reply

    async def ping(self) -> dict:
        return await self._roundtrip({"op": "ping"})

    async def infer(
        self,
        docs: Sequence[Sequence[int]] | Sequence[np.ndarray],
        seed: int = 0,
    ) -> InferReply:
        """Topic mixtures for ``docs``: bit-identical to in-process
        ``InferenceSession.transform(docs, seed=seed)`` on the served
        generation."""
        payload = [
            np.asarray(d, dtype=np.int64).ravel().tolist() for d in docs
        ]
        reply = await self._roundtrip(
            {"op": "infer", "docs": payload, "seed": int(seed)}
        )
        return InferReply(
            theta=np.asarray(reply["theta"], dtype=np.float64),
            generation=str(reply["generation"]),
            lineage=reply.get("lineage"),
            queue_wait_s=float(reply["queue_wait_s"]),
            service_s=float(reply["service_s"]),
            coalesced_requests=int(reply["coalesced_requests"]),
        )

    async def swap(self, path: str) -> dict:
        """Hot-swap the served model to the artifact at ``path``."""
        return await self._roundtrip({"op": "swap", "path": str(path)})

    async def stats(self) -> dict:
        return await self._roundtrip({"op": "stats"})

    async def shutdown(self) -> dict:
        """Ask the server to stop (it drains in-flight work first)."""
        return await self._roundtrip({"op": "shutdown"})
