"""Wire protocol of the serving tier: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding a single object.  JSON keeps the protocol
dependency-free and debuggable (``nc`` + a hex header reaches a live
server); the length prefix makes framing explicit, so a reader never
scans for delimiters and a connection can carry any number of
request/response pairs.  Float64 round-trips exactly through Python's
JSON (``repr`` shortest-round-trip floats), so theta blocks served over
this protocol are **bit-identical** to in-process inference.

Requests are objects with an ``op`` field (``infer`` / ``swap`` /
``stats`` / ``ping`` / ``shutdown``) and an optional client-chosen
``id`` echoed in the response; responses carry a ``type`` field
(``result`` / ``busy`` / ``swapped`` / ``stats`` / ``pong`` / ``bye`` /
``error``).  See docs/API.md "Serving" for the full message reference.
"""

from __future__ import annotations

import asyncio
import json
import struct

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
]

#: Version tag servers report in ``ping``/``stats`` responses.
PROTOCOL_VERSION = 1

#: Hard per-frame ceiling: large enough for any realistic coalesced
#: request or theta block, small enough that a corrupt length prefix
#: cannot make a reader buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(ValueError):
    """A malformed, truncated, or oversized frame."""


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its on-wire bytes (header + JSON)."""
    payload = json.dumps(
        message, separators=(",", ":"), allow_nan=False
    ).encode()
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse a frame payload; every protocol message is a JSON object."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError("frame payload must be a JSON object")
    return obj


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; None on clean EOF (peer closed between frames).

    Raises :class:`FrameError` on a truncated frame, an oversized
    length prefix, or a non-object payload.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise FrameError("connection closed mid-header") from exc
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"peer announced a {length}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one frame and drain (backpressure-aware)."""
    writer.write(encode_frame(message))
    await writer.drain()
