"""Per-request latency accounting for the serving tier.

Every completed request contributes two numbers: ``queue_wait`` (enqueue
to dispatch — how long the coalescer held it) and ``service`` (dispatch
to completion — the inference call it rode in).  :class:`LatencyStats`
keeps a bounded window of recent samples plus lifetime counters, and
snapshots p50/p99/mean/max per component — the numbers the ``stats``
protocol op and the open-loop load benchmark report.
"""

from __future__ import annotations

from collections import deque
from typing import Any

import numpy as np

__all__ = ["LatencyStats", "quantiles"]

#: Samples retained per latency component; old samples age out so a
#: long-lived server reports recent behaviour, not its whole lifetime.
DEFAULT_WINDOW = 4096


def quantiles(samples: deque[float] | list[float]) -> dict[str, float] | None:
    """p50/p99/mean/max of a sample window (None when empty)."""
    if not samples:
        return None
    arr = np.asarray(samples, dtype=np.float64)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }


class LatencyStats:
    """Lifetime counters + windowed latency quantiles for one server."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._queue_wait: deque[float] = deque(maxlen=self.window)
        self._service: deque[float] = deque(maxlen=self.window)
        self._total: deque[float] = deque(maxlen=self.window)
        self.completed = 0
        self.busy_rejected = 0
        self.errors = 0
        self.swaps = 0
        self.swaps_rejected = 0
        self.shed_expired = 0
        self.deadline_exceeded = 0
        self.circuit_rejected = 0
        self.watchdog_fired = 0

    def record(self, queue_wait_s: float, service_s: float) -> None:
        """One completed request: its wait and the service span it rode."""
        self.completed += 1
        self._queue_wait.append(float(queue_wait_s))
        self._service.append(float(service_s))
        self._total.append(float(queue_wait_s) + float(service_s))

    def record_busy(self) -> None:
        self.busy_rejected += 1

    def record_error(self) -> None:
        self.errors += 1

    def record_swap(self) -> None:
        self.swaps += 1

    def record_swap_rejected(self) -> None:
        """A ``swap`` refused (corrupt/invalid artifact); still serving."""
        self.swaps_rejected += 1

    def record_shed(self) -> None:
        """A queued request evicted because its deadline already passed."""
        self.shed_expired += 1

    def record_deadline_exceeded(self) -> None:
        """A dispatched request answered ``deadline_exceeded``."""
        self.deadline_exceeded += 1

    def record_circuit_rejected(self) -> None:
        """Admission refused by an open circuit breaker."""
        self.circuit_rejected += 1

    def record_watchdog(self) -> None:
        """The dispatch watchdog fired (inference pool torn down)."""
        self.watchdog_fired += 1

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready digest: counters plus windowed quantiles."""
        return {
            "completed": self.completed,
            "busy_rejected": self.busy_rejected,
            "errors": self.errors,
            "swaps": self.swaps,
            "swaps_rejected": self.swaps_rejected,
            "shed_expired": self.shed_expired,
            "deadline_exceeded": self.deadline_exceeded,
            "circuit_rejected": self.circuit_rejected,
            "watchdog_fired": self.watchdog_fired,
            "window": self.window,
            "window_samples": len(self._total),
            "queue_wait_s": quantiles(self._queue_wait),
            "service_s": quantiles(self._service),
            "total_s": quantiles(self._total),
        }
