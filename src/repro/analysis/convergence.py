"""Convergence diagnostics for Gibbs chains.

The paper trains "until the model converges" with a fixed iteration
budget; deciding *when* a chain has plateaued is left to the user.  These
diagnostics operate on the per-iteration log-likelihood series every
trainer in this repo records:

- :func:`plateau_iteration` — first iteration after which the series
  stays within a relative band of its final value;
- :func:`geweke_score` — the classic Geweke z-score comparing the means
  of an early and a late window (|z| < 2 ~ stationary);
- :func:`improvement_rate` — smoothed per-iteration LL gain, the
  practical stopping signal.
"""

from __future__ import annotations

import numpy as np


def _as_series(values) -> np.ndarray:
    s = np.asarray(list(values), dtype=np.float64)
    if s.ndim != 1 or s.size == 0:
        raise ValueError("need a non-empty 1-D series")
    if not np.all(np.isfinite(s)):
        raise ValueError("series contains non-finite values")
    return s


def plateau_iteration(values, tolerance: float = 0.01) -> int | None:
    """First index from which the series stays within ``tolerance`` of the
    final value (relative to the total climb).  None if never.

    For a log-likelihood trace this answers "after which iteration was the
    model effectively converged?" — the quantity Figures 7/8 eyeball.
    """
    s = _as_series(values)
    if not (0 < tolerance < 1):
        raise ValueError("tolerance must be in (0, 1)")
    climb = s[-1] - s[0]
    if climb == 0:
        return 0
    band = abs(climb) * tolerance
    ok = np.abs(s - s[-1]) <= band
    # last False, +1
    bad = np.nonzero(~ok)[0]
    if bad.size == 0:
        return 0
    idx = int(bad[-1]) + 1
    return idx if idx < s.size else None


def geweke_score(
    values, first_fraction: float = 0.2, last_fraction: float = 0.5
) -> float:
    """Geweke (1992) z-score between early and late window means.

    |z| below ~2 is consistent with stationarity.  Windows must not
    overlap.
    """
    s = _as_series(values)
    if not (0 < first_fraction < 1 and 0 < last_fraction < 1):
        raise ValueError("window fractions must be in (0, 1)")
    if first_fraction + last_fraction > 1:
        raise ValueError("windows overlap")
    n = s.size
    a = s[: max(1, int(n * first_fraction))]
    b = s[n - max(1, int(n * last_fraction)) :]
    var = a.var(ddof=1) / a.size + b.var(ddof=1) / b.size if min(a.size, b.size) > 1 else 0.0
    if var == 0:
        return 0.0 if a.mean() == b.mean() else float("inf")
    return float((a.mean() - b.mean()) / np.sqrt(var))


def improvement_rate(values, window: int = 5) -> float:
    """Mean per-iteration gain over the trailing ``window`` iterations."""
    s = _as_series(values)
    if window < 1:
        raise ValueError("window must be >= 1")
    if s.size < 2:
        return 0.0
    w = min(window, s.size - 1)
    return float((s[-1] - s[-1 - w]) / w)


def has_converged(
    values,
    min_iterations: int = 10,
    rate_threshold: float = 1e-3,
    geweke_threshold: float = 2.0,
) -> bool:
    """Combined stopping rule: enough iterations, flat rate, stationary.

    The Geweke test is applied to the second half of the series only —
    standard practice is to discard burn-in first, otherwise the initial
    climb dominates the early window and no converged chain ever passes.
    """
    s = _as_series(values)
    if s.size < min_iterations:
        return False
    if abs(improvement_rate(s)) > rate_threshold:
        return False
    tail = s[s.size // 2 :]
    if tail.size < 4:
        return True
    return abs(geweke_score(tail)) < geweke_threshold
