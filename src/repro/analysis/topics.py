"""Topic quality metrics: coherence, diversity, distributions.

Throughput says nothing about whether the topics are any good; these are
the standard qualitative metrics used alongside LDA systems papers:

- **UMass coherence** (Mimno et al. 2011): mean log of smoothed
  co-document frequency over a topic's top word pairs; higher (closer to
  0) = more coherent.
- **topic diversity**: fraction of unique words among all topics' top-N
  lists; near 1 = topics use distinct vocabulary.
- normalized topic-word / topic-share distributions for reporting.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.document import Corpus
from repro.core.model import LdaState


def top_words_matrix(state: LdaState, top_n: int = 10) -> np.ndarray:
    """``int64[K, top_n]`` word ids, descending count per topic."""
    if top_n < 1:
        raise ValueError("top_n must be >= 1")
    k = state.num_topics
    out = np.empty((k, min(top_n, state.num_words)), dtype=np.int64)
    for t in range(k):
        out[t] = state.top_words(t, n=out.shape[1])
    return out


def umass_coherence(
    corpus: Corpus, top_words: np.ndarray, epsilon: float = 1.0
) -> np.ndarray:
    """UMass coherence per topic over the given top-word lists.

    ``C(t) = mean over pairs (i < j) of log[(D(w_j, w_i) + eps) / D(w_i)]``
    where ``D(w)`` is the word's document frequency and ``D(a, b)`` the
    co-document frequency, computed on ``corpus``.
    """
    if top_words.ndim != 2:
        raise ValueError("top_words must be 2-D (K x N)")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    # document frequency per word, and doc-word incidence for co-frequency
    num_docs = corpus.num_docs
    doc_ids = corpus.token_doc_ids().astype(np.int64)
    keys = np.unique(doc_ids * corpus.num_words + corpus.word_ids.astype(np.int64))
    inc_docs = keys // corpus.num_words
    inc_words = keys % corpus.num_words
    # doc sets per word of interest only (keep it sparse).
    wanted = np.unique(top_words)
    docsets = {
        int(w): frozenset(inc_docs[inc_words == w].tolist()) for w in wanted
    }
    out = np.empty(top_words.shape[0], dtype=np.float64)
    for t in range(top_words.shape[0]):
        words = top_words[t]
        scores = []
        for j in range(1, words.shape[0]):
            for i in range(j):
                di = docsets[int(words[i])]
                if not di:
                    continue
                co = len(di & docsets[int(words[j])])
                scores.append(np.log((co + epsilon) / len(di)))
        out[t] = float(np.mean(scores)) if scores else 0.0
    return out


def topic_diversity(top_words: np.ndarray) -> float:
    """Unique fraction of all topics' top words (Dieng et al. 2020)."""
    if top_words.size == 0:
        raise ValueError("empty top_words")
    return float(np.unique(top_words).size / top_words.size)


def topic_shares(state: LdaState) -> np.ndarray:
    """Fraction of corpus tokens assigned to each topic (sums to 1)."""
    totals = state.topic_totals.astype(np.float64)
    s = totals.sum()
    if s <= 0:
        raise ValueError("model has no assigned tokens")
    return totals / s


def effective_topics(state: LdaState) -> float:
    """Perplexity of the topic-share distribution: how many topics are
    really in use (K if uniform, ~1 if collapsed onto one topic)."""
    p = topic_shares(state)
    nz = p[p > 0]
    return float(np.exp(-(nz * np.log(nz)).sum()))


def word_distribution(state: LdaState, topic: int) -> np.ndarray:
    """Smoothed p(w | topic) (the phi row normalised with beta)."""
    if not (0 <= topic < state.num_topics):
        raise IndexError(f"topic {topic} out of range")
    row = state.phi[topic].astype(np.float64) + state.beta
    return row / row.sum()
