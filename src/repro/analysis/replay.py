"""Cross-platform replay: price a recorded run on a different GPU.

The functional trajectory of a CuLDA run — every topic draw, every theta
row length, every bucket decision — depends only on (corpus, config,
seed).  The device spec enters *only* through the clock.  So the Figure 7
/ Table 4 benches train once, keep the per-chunk
:class:`~repro.core.scheduler.ChunkRecord`s, and re-price them on each
Table 2 platform with the exact same cost formulas the trainer itself
uses.  ``tests/test_replay.py`` proves replay equals a direct run.

Replay covers the single-GPU, M=1 configuration (what Figures 7/8 and
Table 4 measure); multi-GPU timing involves cross-device overlap, so the
Figure 9 bench runs the real scheduler instead.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TrainerConfig
from repro.core.costs import (
    int_bytes,
    sampling_cost,
    update_phi_cost,
    update_theta_cost,
)
from repro.core.scheduler import IterationOutcome
from repro.gpusim.cache import gpu_l1_index_factor
from repro.gpusim.clock import gpu_kernel_time
from repro.gpusim.spec import DeviceSpec


def replay_iteration_seconds(
    outcome: IterationOutcome,
    config: TrainerConfig,
    spec: DeviceSpec,
) -> float:
    """Simulated duration of one recorded iteration on ``spec``.

    Mirrors :func:`repro.core.scheduler.run_chunk_kernels` kernel-for-
    kernel: sampling, update-phi, update-theta, serialized on one device.
    """
    if config.num_gpus != 1 or config.chunks_per_gpu != 1:
        raise ValueError(
            "replay covers the single-GPU resident configuration; "
            "run the real scheduler for multi-GPU or streamed runs"
        )
    if not outcome.chunk_records:
        raise ValueError("outcome has no chunk records to replay")
    total = 0.0
    for rec in outcome.chunk_records:
        if config.use_l1_for_indices:
            index_ws = rec.theta_nnz_pre * int_bytes(config.compress) / spec.num_sms
            l1f = gpu_l1_index_factor(spec, index_ws)
        else:
            l1f = 1.0
        total += gpu_kernel_time(
            spec,
            sampling_cost(rec.stats, config.compress, config.share_p2_tree, l1f),
        )
        total += gpu_kernel_time(
            spec, update_phi_cost(rec.stats.num_tokens, config.compress)
        )
        total += gpu_kernel_time(
            spec,
            update_theta_cost(
                rec.stats.num_tokens,
                rec.num_local_docs,
                config.num_topics,
                rec.theta_nnz_post,
                config.compress,
            ),
        )
    return total


def replay_throughput_series(
    outcomes: list[IterationOutcome],
    config: TrainerConfig,
    spec: DeviceSpec,
    total_tokens: int,
) -> np.ndarray:
    """Per-iteration tokens/sec of a recorded run on ``spec`` (Figure 7)."""
    if total_tokens <= 0:
        raise ValueError("total_tokens must be positive")
    out = np.empty(len(outcomes), dtype=np.float64)
    for i, oc in enumerate(outcomes):
        out[i] = total_tokens / replay_iteration_seconds(oc, config, spec)
    return out


def replay_kernel_seconds(
    outcomes: list[IterationOutcome],
    config: TrainerConfig,
    spec: DeviceSpec,
) -> dict[str, float]:
    """Per-kernel simulated seconds of a recorded run on ``spec`` (Table 5)."""
    if config.num_gpus != 1 or config.chunks_per_gpu != 1:
        raise ValueError("replay covers the single-GPU resident configuration")
    out = {"sampling": 0.0, "update_phi": 0.0, "update_theta": 0.0}
    for oc in outcomes:
        for rec in oc.chunk_records:
            if config.use_l1_for_indices:
                index_ws = (
                    rec.theta_nnz_pre * int_bytes(config.compress) / spec.num_sms
                )
                l1f = gpu_l1_index_factor(spec, index_ws)
            else:
                l1f = 1.0
            out["sampling"] += gpu_kernel_time(
                spec,
                sampling_cost(rec.stats, config.compress, config.share_p2_tree, l1f),
            )
            out["update_phi"] += gpu_kernel_time(
                spec, update_phi_cost(rec.stats.num_tokens, config.compress)
            )
            out["update_theta"] += gpu_kernel_time(
                spec,
                update_theta_cost(
                    rec.stats.num_tokens,
                    rec.num_local_docs,
                    config.num_topics,
                    rec.theta_nnz_post,
                    config.compress,
                ),
            )
    return out


def replay_cumulative_seconds(
    outcomes: list[IterationOutcome],
    config: TrainerConfig,
    spec: DeviceSpec,
) -> np.ndarray:
    """Cumulative simulated time per iteration on ``spec`` (Figure 8 x-axis)."""
    durs = [replay_iteration_seconds(oc, config, spec) for oc in outcomes]
    return np.cumsum(durs)
