"""Execution-time breakdown (Table 5).

Table 5 reports the share of GPU execution time spent in the three
kernels — sampling, update-theta, update-phi — on NYTimes per platform
(sampling dominates at 79-88%).  The trainers' cost ledgers record per
-kernel simulated seconds; this module normalises them the way the paper
does (over the three kernels, excluding transfers/sync which Table 5
does not show).
"""

from __future__ import annotations

from repro.core.trainer import CuLdaTrainer

#: The Table 5 kernel names in row order.
TABLE5_KERNELS = ("sampling", "update_theta", "update_phi")


def table5_fractions(trainer: CuLdaTrainer) -> dict[str, float]:
    """Kernel time shares normalised over the three Table 5 kernels."""
    merged = trainer.kernel_breakdown()
    total = sum(merged.get(k, 0.0) for k in TABLE5_KERNELS)
    if total <= 0:
        raise ValueError("trainer has no recorded kernel time yet")
    return {k: merged.get(k, 0.0) / total for k in TABLE5_KERNELS}


def full_fractions(trainer: CuLdaTrainer) -> dict[str, float]:
    """All ledger entries (kernels + transfer + sync) as shares of total."""
    merged = trainer.kernel_breakdown()
    total = sum(merged.values())
    if total <= 0:
        raise ValueError("trainer has no recorded time yet")
    return {k: v / total for k, v in sorted(merged.items())}


def sampling_dominates(trainer: CuLdaTrainer, threshold: float = 0.5) -> bool:
    """The paper's Table 5 claim: sampling is the dominant kernel."""
    if not (0 < threshold < 1):
        raise ValueError("threshold must be in (0, 1)")
    return table5_fractions(trainer)["sampling"] >= threshold
