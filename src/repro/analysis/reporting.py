"""ASCII rendering of the paper's tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting in one place and the benches thin.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule, like the paper's tables."""
    if not headers:
        raise ValueError("headers must be non-empty")
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for r in str_rows:
        if len(r) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_series(
    x: Sequence[float],
    y: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
    max_points: int = 25,
) -> str:
    """A figure's data series as aligned (x, y) pairs, down-sampled."""
    x = list(x)
    y = list(y)
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if not x:
        raise ValueError("empty series")
    if max_points < 2:
        raise ValueError("max_points must be >= 2")
    idx = np.unique(np.linspace(0, len(x) - 1, max_points).astype(int))
    rows = [(x[i], y[i]) for i in idx]
    return render_table([x_label, y_label], rows, title=title)


def render_sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line unicode trend view of a series (for bench logs)."""
    v = np.asarray(list(values), dtype=np.float64)
    if v.size == 0:
        raise ValueError("empty series")
    blocks = "▁▂▃▄▅▆▇█"
    idx = np.unique(np.linspace(0, v.size - 1, min(width, v.size)).astype(int))
    v = v[idx]
    lo, hi = float(v.min()), float(v.max())
    if hi == lo:
        return blocks[0] * v.size
    scaled = ((v - lo) / (hi - lo) * (len(blocks) - 1)).astype(int)
    return "".join(blocks[s] for s in scaled)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)
