"""Metric extraction from training histories (Eq. 2, Figures 7-9).

All functions operate on lists of
:class:`~repro.core.trainer.IterationRecord`, the common currency of the
core trainer and every baseline trainer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trainer import IterationRecord


def throughput_series(history: list[IterationRecord]) -> np.ndarray:
    """Per-iteration tokens/sec — one Figure 7 curve."""
    if not history:
        raise ValueError("empty history")
    return np.array([r.tokens_per_sec for r in history], dtype=np.float64)


def convergence_series(
    history: list[IterationRecord],
) -> tuple[np.ndarray, np.ndarray]:
    """(simulated seconds, log-likelihood/token) — one Figure 8 curve.

    Iterations without a likelihood measurement are skipped.
    """
    pts = [
        (r.cumulative_seconds, r.log_likelihood_per_token)
        for r in history
        if r.log_likelihood_per_token is not None
    ]
    if not pts:
        raise ValueError("history has no likelihood measurements")
    t, ll = zip(*pts)
    return np.asarray(t, dtype=np.float64), np.asarray(ll, dtype=np.float64)


def average_throughput(history: list[IterationRecord], first_n: int = 100) -> float:
    """Table 4 aggregate: mean tokens/sec of the first ``first_n`` iterations."""
    if not history:
        raise ValueError("empty history")
    return float(throughput_series(history)[:first_n].mean())


def warmup_ratio(history: list[IterationRecord], head: int = 5) -> float:
    """Steady-state / initial throughput ratio.

    Figure 7's shape: > 1 when the model needs iterations to sparsify
    (NYTimes), ~ 1 when it starts sparse (PubMed).
    """
    s = throughput_series(history)
    if s.shape[0] < 2 * head:
        raise ValueError(f"need at least {2*head} iterations")
    return float(s[-head:].mean() / s[:head].mean())


@dataclass(frozen=True)
class ScalingPoint:
    """One Figure 9(b) point: speedup at a GPU count."""

    num_gpus: int
    tokens_per_sec: float
    speedup: float
    efficiency: float  # speedup / num_gpus


def scaling_table(
    throughputs: dict[int, float],
) -> list[ScalingPoint]:
    """Normalise multi-GPU throughputs against the 1-GPU run (Figure 9b)."""
    if 1 not in throughputs:
        raise ValueError("scaling table needs a 1-GPU measurement")
    base = throughputs[1]
    if base <= 0:
        raise ValueError("baseline throughput must be positive")
    return [
        ScalingPoint(
            num_gpus=g,
            tokens_per_sec=tp,
            speedup=tp / base,
            efficiency=tp / base / g,
        )
        for g, tp in sorted(throughputs.items())
    ]


def time_to_quality(
    history: list[IterationRecord], target_ll: float
) -> float | None:
    """Simulated seconds until log-likelihood/token first reaches target.

    The Figure 8 comparison in one number; None if never reached.
    """
    for r in history:
        if r.log_likelihood_per_token is not None and r.log_likelihood_per_token >= target_ll:
            return r.cumulative_seconds
    return None
