"""Analysis layer: roofline characterization, metrics, breakdowns, reports."""

from repro.analysis.heldout import HeldOutResult, document_completion, split_documents
from repro.analysis.replay import (
    replay_cumulative_seconds,
    replay_iteration_seconds,
    replay_kernel_seconds,
    replay_throughput_series,
)
from repro.analysis.topics import (
    effective_topics,
    top_words_matrix,
    topic_diversity,
    topic_shares,
    umass_coherence,
    word_distribution,
)
from repro.analysis.breakdown import (
    TABLE5_KERNELS,
    full_fractions,
    sampling_dominates,
    table5_fractions,
)
from repro.analysis.metrics import (
    ScalingPoint,
    average_throughput,
    convergence_series,
    scaling_table,
    throughput_series,
    time_to_quality,
    warmup_ratio,
)
from repro.analysis.roofline import (
    StepIntensity,
    attainable_gflops,
    average_intensity,
    is_memory_bound,
    table1_rows,
    tokens_per_sec_bound,
)
from repro.analysis.reporting import render_series, render_sparkline, render_table

__all__ = [
    "table1_rows",
    "average_intensity",
    "is_memory_bound",
    "attainable_gflops",
    "tokens_per_sec_bound",
    "StepIntensity",
    "throughput_series",
    "convergence_series",
    "average_throughput",
    "warmup_ratio",
    "scaling_table",
    "ScalingPoint",
    "time_to_quality",
    "table5_fractions",
    "full_fractions",
    "sampling_dominates",
    "TABLE5_KERNELS",
    "render_table",
    "render_series",
    "render_sparkline",
    "HeldOutResult",
    "document_completion",
    "split_documents",
    "replay_iteration_seconds",
    "replay_throughput_series",
    "replay_kernel_seconds",
    "replay_cumulative_seconds",
    "top_words_matrix",
    "umass_coherence",
    "topic_diversity",
    "topic_shares",
    "effective_topics",
    "word_distribution",
]
