"""Roofline characterization of LDA sampling — reproduces Table 1.

Section 3.1: the paper computes, for each step of one LDA sampling, the
arithmetic intensity (Flops/Byte, Eq. 3) under 32-bit integer and 32-bit
float data, theta in CSR.  The values (Kd-independent where both terms
scale with Kd):

    Compute S          4*Kd  / (3*Int*Kd)              = 0.33
    Compute Q          2*K   / (2*Int*K)               = 0.25
    Sampling from p1   6*Kd  / ((3*Int + 2*Float)*Kd)  = 0.30
    Sampling from p2   3*K   / ((2*Int + 2*Float)*K)   = 0.19

Average ~ 0.27, far below any realistic machine balance (the paper's
host CPU: 470 GFLOPS / 51.2 GB/s = 9.2) — **LDA is memory bound**, the
observation the whole system design follows from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.spec import CpuSpec, DeviceSpec

INT = 4  # Table 1 uses 32-bit integers
FLOAT = 4  # and 32-bit floats


@dataclass(frozen=True)
class StepIntensity:
    """One Table 1 row."""

    step: str
    formula: str
    flops: float
    bytes: float

    @property
    def flops_per_byte(self) -> float:
        if self.bytes == 0:
            return float("inf")
        return self.flops / self.bytes


def table1_rows(num_topics: int = 1024, kd: int = 128) -> list[StepIntensity]:
    """The four Table 1 steps evaluated at (K, Kd).

    The ratios are independent of K and Kd (both numerator and denominator
    scale identically), matching the constant values the paper prints.
    """
    if num_topics < 1 or kd < 1:
        raise ValueError("num_topics and kd must be positive")
    k, kd_ = float(num_topics), float(kd)
    return [
        StepIntensity(
            "Compute S", "4*Kd / (3*Int*Kd)", 4 * kd_, 3 * INT * kd_
        ),
        StepIntensity(
            "Compute Q", "2*K / (2*Int*K)", 2 * k, 2 * INT * k
        ),
        StepIntensity(
            "Sampling from p1(k)",
            "6*Kd / ((3*Int+2*Float)*Kd)",
            6 * kd_,
            (3 * INT + 2 * FLOAT) * kd_,
        ),
        StepIntensity(
            "Sampling from p2(k)",
            "3*K / ((2*Int+2*Float)*K)",
            3 * k,
            (2 * INT + 2 * FLOAT) * k,
        ),
    ]


def average_intensity(rows: list[StepIntensity] | None = None) -> float:
    """Mean Flops/Byte over the steps — the paper's headline 0.27."""
    rows = rows if rows is not None else table1_rows()
    if not rows:
        raise ValueError("no rows")
    return sum(r.flops_per_byte for r in rows) / len(rows)


def is_memory_bound(
    processor: CpuSpec | DeviceSpec, intensity: float | None = None
) -> bool:
    """Roofline verdict: is LDA under the processor's ridge point?

    True for every platform in Table 2 — the paper's conclusion.
    """
    if intensity is None:
        intensity = average_intensity()
    if intensity < 0:
        raise ValueError("intensity must be non-negative")
    return intensity < processor.machine_balance


def attainable_gflops(
    processor: CpuSpec | DeviceSpec, intensity: float | None = None
) -> float:
    """Roofline attainable performance: min(peak, intensity * BW)."""
    if intensity is None:
        intensity = average_intensity()
    return min(
        processor.peak_gflops,
        intensity * processor.mem_bandwidth_gbps,
    )


def tokens_per_sec_bound(
    processor: CpuSpec | DeviceSpec,
    bytes_per_token: float,
    efficiency: float = 1.0,
) -> float:
    """Bandwidth-limited throughput ceiling for a given per-token traffic.

    The first-order predictor behind every performance number in the
    reproduction: ``BW * eff / bytes_per_token``.
    """
    if bytes_per_token <= 0:
        raise ValueError("bytes_per_token must be positive")
    if not (0 < efficiency <= 1):
        raise ValueError("efficiency must be in (0, 1]")
    return processor.mem_bandwidth_gbps * 1e9 * efficiency / bytes_per_token
