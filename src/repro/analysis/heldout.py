"""Held-out evaluation: document-completion perplexity.

Training likelihood (Figure 8) can reward overfitting; the standard
held-out protocol for LDA is **document completion**: split each test
document into an observed half and a held-out half, fold in a topic
mixture on the observed half (phi frozen), then score the held-out half
under that mixture.  Reported as per-token log predictive probability
and its perplexity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inference import FoldInSampler
from repro.corpus.document import Corpus


@dataclass(frozen=True)
class HeldOutResult:
    """Aggregate document-completion scores."""

    log_predictive_per_token: float
    perplexity: float
    num_documents: int
    num_scored_tokens: int


def split_documents(
    corpus: Corpus, observed_fraction: float = 0.5, seed: int = 0
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Random per-document token split into (observed, held-out) halves.

    Documents with fewer than 2 tokens are skipped (nothing to score).
    """
    if not (0 < observed_fraction < 1):
        raise ValueError("observed_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    observed, heldout = [], []
    for d in range(corpus.num_docs):
        w = corpus.document(d).word_ids
        if w.shape[0] < 2:
            continue
        perm = rng.permutation(w.shape[0])
        cut = max(1, min(w.shape[0] - 1, int(round(observed_fraction * w.shape[0]))))
        observed.append(w[perm[:cut]])
        heldout.append(w[perm[cut:]])
    return observed, heldout


def document_completion(
    sampler: FoldInSampler,
    corpus: Corpus,
    observed_fraction: float = 0.5,
    num_sweeps: int = 25,
    burn_in: int = 10,
    seed: int = 0,
) -> HeldOutResult:
    """Document-completion evaluation of a trained model on ``corpus``.

    ``corpus`` should be *test* documents (not used in training); using
    training documents measures memorisation instead of generalisation.
    """
    observed, heldout = split_documents(corpus, observed_fraction, seed)
    if not observed:
        raise ValueError("no documents with >= 2 tokens to evaluate")
    root = np.random.SeedSequence(seed + 1)
    seeds = root.spawn(len(observed))
    total_lp = 0.0
    total_tokens = 0
    for obs, held, s in zip(observed, heldout, seeds):
        mixture = sampler.infer_document(
            obs, num_sweeps=num_sweeps, burn_in=burn_in,
            rng=np.random.default_rng(s),
        )
        lp = sampler.log_predictive(held, mixture)
        total_lp += lp * held.shape[0]
        total_tokens += held.shape[0]
    per_token = total_lp / total_tokens
    return HeldOutResult(
        log_predictive_per_token=per_token,
        perplexity=float(np.exp(-per_token)),
        num_documents=len(observed),
        num_scored_tokens=total_tokens,
    )
