"""Held-out evaluation: document-completion perplexity.

Training likelihood (Figure 8) can reward overfitting; the standard
held-out protocol for LDA is **document completion**: split each test
document into an observed half and a held-out half, fold in a topic
mixture on the observed half (phi frozen), then score the held-out half
under that mixture.  Reported as per-token log predictive probability
and its perplexity.

Inference runs on the batched
:class:`~repro.model.InferenceSession` (many documents per sweep);
:func:`document_completion` accepts a :class:`~repro.model.TopicModel`,
a ready session, or — for backward compatibility — a sequential
:class:`~repro.core.inference.FoldInSampler`, whose per-document
results the batched path reproduces bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inference import FoldInSampler
from repro.corpus.document import Corpus
from repro.model import InferenceSession, TopicModel


@dataclass(frozen=True)
class HeldOutResult:
    """Aggregate document-completion scores."""

    log_predictive_per_token: float
    perplexity: float
    num_documents: int
    num_scored_tokens: int


def split_documents(
    corpus: Corpus, observed_fraction: float = 0.5, seed: int = 0
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Random per-document token split into (observed, held-out) halves.

    Documents with fewer than 2 tokens are skipped (nothing to score).
    """
    if not (0 < observed_fraction < 1):
        raise ValueError("observed_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    observed, heldout = [], []
    for d in range(corpus.num_docs):
        w = corpus.document(d).word_ids
        if w.shape[0] < 2:
            continue
        perm = rng.permutation(w.shape[0])
        cut = max(1, min(w.shape[0] - 1, int(round(observed_fraction * w.shape[0]))))
        observed.append(w[perm[:cut]])
        heldout.append(w[perm[cut:]])
    return observed, heldout


def _as_session(
    model: TopicModel | InferenceSession | FoldInSampler,
    num_sweeps: int,
    burn_in: int,
) -> InferenceSession:
    if isinstance(model, InferenceSession):
        return model
    if isinstance(model, TopicModel):
        return InferenceSession(model, num_sweeps=num_sweeps, burn_in=burn_in)
    if isinstance(model, FoldInSampler):
        return InferenceSession.from_fold_in(
            model, num_sweeps=num_sweeps, burn_in=burn_in
        )
    raise TypeError(
        f"expected TopicModel, InferenceSession or FoldInSampler, "
        f"got {type(model).__name__}"
    )


def document_completion(
    model: TopicModel | InferenceSession | FoldInSampler,
    corpus: Corpus,
    observed_fraction: float = 0.5,
    num_sweeps: int | None = None,
    burn_in: int | None = None,
    seed: int = 0,
) -> HeldOutResult:
    """Document-completion evaluation of a trained model on ``corpus``.

    ``corpus`` should be *test* documents (not used in training); using
    training documents measures memorisation instead of generalisation.
    The observed halves fold in as one batched pass; each document's
    draws use its own seeded stream, so results do not depend on batch
    size and match the sequential per-document protocol.

    ``num_sweeps``/``burn_in`` default to the session's own schedule
    when ``model`` is an :class:`InferenceSession` (they override it
    when given), and to 25/10 otherwise.
    """
    if isinstance(model, InferenceSession):
        num_sweeps = model.num_sweeps if num_sweeps is None else num_sweeps
        burn_in = model.burn_in if burn_in is None else burn_in
    else:
        num_sweeps = 25 if num_sweeps is None else num_sweeps
        burn_in = 10 if burn_in is None else burn_in
    session = _as_session(model, num_sweeps, burn_in)
    observed, heldout = split_documents(corpus, observed_fraction, seed)
    if not observed:
        raise ValueError("no documents with >= 2 tokens to evaluate")
    mixtures = session.transform(
        observed, seed=seed + 1, num_sweeps=num_sweeps, burn_in=burn_in
    )
    total_lp = 0.0
    total_tokens = 0
    for i, held in enumerate(heldout):
        lp = session.log_predictive(held, mixtures[i])
        total_lp += lp * held.shape[0]
        total_tokens += held.shape[0]
    per_token = total_lp / total_tokens
    return HeldOutResult(
        log_predictive_per_token=per_token,
        perplexity=float(np.exp(-per_token)),
        num_documents=len(observed),
        num_scored_tokens=total_tokens,
    )
