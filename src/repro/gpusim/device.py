"""SimulatedGPU: the device facade the trainer programs against.

A device couples a :class:`~repro.gpusim.spec.DeviceSpec` with a byte
-accurate memory allocator, an engine timeline and a cost ledger.  The
trainer uses it like a thin CUDA runtime:

    dev = SimulatedGPU(0, V100_VOLTA, PCIE_TOPOLOGY)
    s = dev.create_stream()
    dev.h2d("chunk[0]", chunk_bytes, stream=s)
    dev.launch("sampling", cost, stream=s)
    t = dev.sync()

Kernel *functionality* is not here — kernels are ordinary NumPy functions
in :mod:`repro.core`; the device only accounts for their simulated time.
This split mirrors a functional-first architecture simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.clock import CostLedger, KernelCost, gpu_kernel_time
from repro.gpusim.interconnect import HostLinkTopology, PCIE_TOPOLOGY
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.spec import DeviceSpec
from repro.gpusim.stream import COMPUTE, COPY_D2H, COPY_H2D, Event, Stream, Timeline
from repro.gpusim.trace import TraceEvent


@dataclass
class SimulatedGPU:
    """One simulated GPU in a shared time domain."""

    device_id: int
    spec: DeviceSpec
    topology: HostLinkTopology = field(default_factory=lambda: PCIE_TOPOLOGY)
    memory: DeviceMemory = field(init=False)
    timeline: Timeline = field(init=False)
    ledger: CostLedger = field(init=False)
    default_stream: Stream = field(init=False)

    trace: list[TraceEvent] = field(init=False)

    def __post_init__(self) -> None:
        self.memory = DeviceMemory(self.spec.memory_bytes)
        self.timeline = Timeline()
        self.ledger = CostLedger()
        self.default_stream = self.timeline.create_stream()
        self.trace = []

    # -- streams & events -------------------------------------------------

    def create_stream(self) -> Stream:
        """New asynchronous stream starting at the current device time."""
        return self.timeline.create_stream(at=0.0)

    def record_event(self, stream: Stream | None = None) -> Event:
        return (stream or self.default_stream).record_event()

    # -- memory -----------------------------------------------------------

    def alloc(self, name: str, nbytes: int) -> None:
        """Reserve device memory (raises DeviceOutOfMemoryError if full)."""
        self.memory.alloc(name, nbytes)

    def free(self, name: str) -> None:
        self.memory.free(name)

    # -- work submission ---------------------------------------------------

    def launch(
        self,
        name: str,
        cost: KernelCost,
        stream: Stream | None = None,
        earliest: float = 0.0,
    ) -> float:
        """Launch a kernel; returns its simulated completion time."""
        stream = stream or self.default_stream
        dur = gpu_kernel_time(self.spec, cost)
        start, end = self.timeline.schedule(stream, COMPUTE, dur, earliest)
        self.ledger.charge(name, cost, dur)
        self.trace.append(TraceEvent(self.device_id, name, COMPUTE, start, end))
        return end

    def h2d(
        self,
        name: str,
        nbytes: float,
        stream: Stream | None = None,
        earliest: float = 0.0,
    ) -> float:
        """Host-to-device copy over the host link; returns completion time."""
        stream = stream or self.default_stream
        dur = self.topology.h2d_time(nbytes)
        start, end = self.timeline.schedule(stream, COPY_H2D, dur, earliest)
        self.ledger.charge(name, KernelCost(bytes_written=nbytes), dur)
        self.trace.append(TraceEvent(self.device_id, name, COPY_H2D, start, end))
        return end

    def d2h(
        self,
        name: str,
        nbytes: float,
        stream: Stream | None = None,
        earliest: float = 0.0,
    ) -> float:
        """Device-to-host copy; returns completion time."""
        stream = stream or self.default_stream
        dur = self.topology.d2h_time(nbytes)
        start, end = self.timeline.schedule(stream, COPY_D2H, dur, earliest)
        self.ledger.charge(name, KernelCost(bytes_read=nbytes), dur)
        self.trace.append(TraceEvent(self.device_id, name, COPY_D2H, start, end))
        return end

    def sync(self) -> float:
        """Device-wide synchronize; returns the idle time."""
        return self.timeline.device_time()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SimulatedGPU(id={self.device_id}, {self.spec.name})"


def p2p_copy(
    src: SimulatedGPU,
    dst: SimulatedGPU,
    nbytes: float,
    name: str = "sync",
    src_stream: Stream | None = None,
    dst_stream: Stream | None = None,
) -> float:
    """Peer-to-peer copy between two devices (Figure 4 reduce/broadcast).

    The copy occupies the source's D2H engine and the destination's H2D
    engine for the same interval (a peer copy crosses the shared bus), and
    starts only when *both* sides are ready.  Returns the completion time
    and leaves both streams at it.
    """
    if src is dst:
        raise ValueError("p2p copy requires distinct devices")
    src_stream = src_stream or src.default_stream
    dst_stream = dst_stream or dst.default_stream
    dur = src.topology.p2p_time(nbytes)
    ready = max(
        src_stream.cursor,
        dst_stream.cursor,
        src.timeline.engines[COPY_D2H],
        dst.timeline.engines[COPY_H2D],
    )
    s0, _ = src.timeline.schedule(src_stream, COPY_D2H, dur, earliest=ready)
    _, end = dst.timeline.schedule(dst_stream, COPY_H2D, dur, earliest=ready)
    src_stream.cursor = end
    dst_stream.cursor = end
    src.ledger.charge(name, KernelCost(bytes_read=nbytes), dur)
    src.trace.append(TraceEvent(src.device_id, name, COPY_D2H, s0, end))
    dst.trace.append(TraceEvent(dst.device_id, name, COPY_H2D, s0, end))
    return end
