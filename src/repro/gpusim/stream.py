"""Streams, events and engine timelines (Section 5.1 overlap machinery).

``WorkSchedule2`` pipelines chunk ``m+1``'s transfer with chunk ``m``'s
computation using CUDA streams.  The simulator reproduces the semantics
with a discrete timeline per device:

- every device has independent **engines** (compute, H2D copy, D2H copy) —
  operations on different engines overlap, operations on the same engine
  serialize (one DMA engine per direction, one kernel at a time, matching
  "By default, a GPU executes one kernel at a time");
- a **stream** serializes the operations submitted to it regardless of
  engine — exactly CUDA stream ordering;
- **events** capture a stream's cursor and let other streams wait on it.

All cursors live in one shared simulated time domain (seconds), so
cross-device coordination (peer copies, host barriers) is just max().
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Engine names every device timeline exposes.
COMPUTE = "compute"
COPY_H2D = "copy_h2d"
COPY_D2H = "copy_d2h"

ENGINES = (COMPUTE, COPY_H2D, COPY_D2H)


@dataclass
class Event:
    """A recorded point in simulated time (cf. ``cudaEvent_t``)."""

    time: float = 0.0


@dataclass
class Stream:
    """An ordered submission queue (cf. ``cudaStream_t``)."""

    stream_id: int
    cursor: float = 0.0

    def wait_event(self, event: Event) -> None:
        """Subsequent work on this stream starts no earlier than the event."""
        self.cursor = max(self.cursor, event.time)

    def record_event(self) -> Event:
        """Capture the completion time of all work submitted so far."""
        return Event(self.cursor)


@dataclass
class Timeline:
    """Per-device engine cursors in a shared simulated time domain."""

    engines: dict[str, float] = field(default_factory=lambda: dict.fromkeys(ENGINES, 0.0))
    _next_stream: int = 0

    def create_stream(self, at: float = 0.0) -> Stream:
        s = Stream(self._next_stream, cursor=at)
        self._next_stream += 1
        return s

    def schedule(
        self,
        stream: Stream,
        engine: str,
        duration: float,
        earliest: float = 0.0,
    ) -> tuple[float, float]:
        """Place an operation of ``duration`` seconds on ``engine``.

        Start time is the latest of: the stream's program order, the
        engine's availability, and ``earliest`` (used for cross-device
        dependencies).  Returns ``(start, end)``.
        """
        if engine not in self.engines:
            raise KeyError(f"unknown engine {engine!r}; have {list(self.engines)}")
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        start = max(stream.cursor, self.engines[engine], earliest)
        end = start + duration
        stream.cursor = end
        self.engines[engine] = end
        return start, end

    def device_time(self) -> float:
        """Time at which every engine is idle (device-wide sync point)."""
        return max(self.engines.values())

    def advance_to(self, t: float) -> None:
        """Move every engine cursor forward to at least ``t`` (barrier)."""
        for k in self.engines:
            self.engines[k] = max(self.engines[k], t)


def barrier(timelines: list[Timeline]) -> float:
    """Host-side barrier across devices.

    Returns the barrier time and advances every timeline to it — this is
    the "after all GPUs finish their execution" synchronization point of
    Algorithm 1 (line 13/31).
    """
    if not timelines:
        raise ValueError("barrier over no timelines")
    t = max(tl.device_time() for tl in timelines)
    for tl in timelines:
        tl.advance_to(t)
    return t
