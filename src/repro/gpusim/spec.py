"""Hardware specifications for the simulated platforms.

The reproduction has no physical GPU, so every device is described by the
handful of parameters the paper's own analysis uses (Section 3 roofline,
Section 7 platform table): peak memory bandwidth, peak single-precision
FLOPS, processor count, on-chip memory sizes and interconnect reach.

Efficiency factors model the gap between peak and achieved bandwidth for
the irregular access patterns of LDA; they are per-architecture constants
(documented and calibrated once in :mod:`repro.gpusim.platform`), not
per-experiment knobs.
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = 1024**3
GB = 10**9


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of one simulated GPU.

    Attributes
    ----------
    name / arch:
        Marketing name and architecture family (used in reports).
    mem_bandwidth_gbps:
        Peak off-chip memory bandwidth, GB/s (e.g. Titan X: 336).
    peak_gflops:
        Peak single-precision GFLOPS.
    num_sms:
        Streaming multiprocessors ("processors" in the paper's wording).
    shared_mem_per_sm_kb / l1_kb_per_sm:
        On-chip memory sizes; bound the index-tree capacity per block.
    memory_gb:
        Device memory capacity (decimal GB), enforced by the allocator.
    mem_efficiency:
        Achieved / peak bandwidth for the word-block sampling access
        pattern (coalesced token streams + L1-cached sparse indices).
    compute_efficiency:
        Achieved / peak FLOPS for the same kernels.
    atomic_gops:
        Throughput of data-local atomic adds, in Gop/s (Section 6.2:
        "atomic functions that have good data locality show good
        performance").
    kernel_launch_us:
        Fixed launch latency charged per kernel.
    warp_size:
        SIMD width (32 on NVIDIA, 64 on AMD).
    """

    name: str
    arch: str
    mem_bandwidth_gbps: float
    peak_gflops: float
    num_sms: int
    shared_mem_per_sm_kb: int
    l1_kb_per_sm: int
    memory_gb: float
    mem_efficiency: float = 0.75
    compute_efficiency: float = 0.5
    atomic_gops: float = 20.0
    kernel_launch_us: float = 5.0
    warp_size: int = 32

    def __post_init__(self) -> None:
        if self.mem_bandwidth_gbps <= 0 or self.peak_gflops <= 0:
            raise ValueError("bandwidth and FLOPS must be positive")
        if not (0 < self.mem_efficiency <= 1 and 0 < self.compute_efficiency <= 1):
            raise ValueError("efficiency factors must be in (0, 1]")
        if self.num_sms < 1 or self.memory_gb <= 0:
            raise ValueError("num_sms and memory_gb must be positive")
        if self.warp_size < 1:
            raise ValueError("warp_size must be positive")

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_gb * GB)

    @property
    def effective_bandwidth(self) -> float:
        """Achieved bandwidth in bytes/second."""
        return self.mem_bandwidth_gbps * GB * self.mem_efficiency

    @property
    def effective_flops(self) -> float:
        """Achieved FLOPS in flop/second."""
        return self.peak_gflops * 1e9 * self.compute_efficiency

    @property
    def machine_balance(self) -> float:
        """Peak Flops/Byte ratio — the roofline ridge point (Section 3)."""
        return self.peak_gflops / self.mem_bandwidth_gbps


@dataclass(frozen=True)
class CpuSpec:
    """Parameters of a simulated CPU socket pair (the host in Table 2).

    The cache model (``repro.gpusim.cache``) degrades the effective
    bandwidth when the working set exceeds ``llc_mb`` — this is exactly
    the "increasing data size makes the cache performance sub-optimal"
    effect the paper cites as the CPU scalability wall.
    """

    name: str
    mem_bandwidth_gbps: float
    peak_gflops: float
    cores: int
    llc_mb: float
    memory_gb: float = 64.0
    mem_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.mem_bandwidth_gbps <= 0 or self.peak_gflops <= 0:
            raise ValueError("bandwidth and FLOPS must be positive")
        if self.cores < 1 or self.llc_mb <= 0:
            raise ValueError("cores and llc_mb must be positive")

    @property
    def machine_balance(self) -> float:
        """Peak Flops/Byte — the paper quotes 470/51.2 = 9.2 for its host."""
        return self.peak_gflops / self.mem_bandwidth_gbps

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_gb * GB)
