"""Kernel launch geometry helpers.

The cost builders in :mod:`repro.core.costs` need the launch geometry the
paper fixes in Section 6.1.2: one warp per sampler, 32 samplers per thread
block, tokens of one word per block.  This module turns a chunk's block
plan into grid/occupancy figures so costs (and diagnostics like achieved
parallelism) can be derived.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.encoding import BlockPlan
from repro.gpusim.spec import DeviceSpec

#: Paper: "We set the number of samplers in each thread block as 32,
#: which is the allowed maximal value" -> 32 warps x 32 lanes = 1024 threads.
WARPS_PER_BLOCK = 32


@dataclass(frozen=True)
class LaunchGeometry:
    """Grid shape of one sampling-kernel launch."""

    num_blocks: int
    warps_per_block: int
    warp_size: int

    def __post_init__(self) -> None:
        if self.num_blocks < 0 or self.warps_per_block < 1 or self.warp_size < 1:
            raise ValueError("invalid launch geometry")

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * self.warp_size

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    @property
    def total_samplers(self) -> int:
        """One warp = one LDA sampler (Section 6.1.1)."""
        return self.num_blocks * self.warps_per_block

    def occupancy_waves(self, spec: DeviceSpec, blocks_per_sm: int = 2) -> float:
        """How many "waves" of blocks the grid needs on ``spec``.

        A wave is one full residency of ``num_sms * blocks_per_sm`` blocks.
        Fewer than one wave means the GPU is under-filled — the situation
        the paper's Section 3.2 warns about ("necessary to launch tens of
        thousands of concurrent threads to saturate one GPU").
        """
        resident = spec.num_sms * blocks_per_sm
        if resident <= 0:
            raise ValueError("blocks_per_sm must be positive")
        return self.num_blocks / resident


def geometry_for_plan(
    plan: BlockPlan,
    warp_size: int = 32,
    warps_per_block: int = WARPS_PER_BLOCK,
) -> LaunchGeometry:
    """Launch geometry for one chunk's sampling kernel."""
    return LaunchGeometry(
        num_blocks=plan.num_blocks,
        warps_per_block=warps_per_block,
        warp_size=warp_size,
    )


def saturation_ratio(geom: LaunchGeometry, spec: DeviceSpec) -> float:
    """Fraction of the device the launch can keep busy (0..1].

    Used by the parallelization tests: a single-sampler launch must report
    a tiny ratio (the paper's "running one sampler can not fully utilize
    the GPU"), a full chunk launch should saturate.
    """
    waves = geom.occupancy_waves(spec)
    return min(1.0, waves)
