"""Cache-behaviour models for effective-bandwidth scaling.

Section 3.2 of the paper: CPU LDA solutions "mainly rely on caches to
improve the memory bandwidth.  However, the increasing data size makes
the cache performance sub-optimal."  The CPU model here captures that
cliff; the GPU model captures the paper's two on-chip levers — the L1
hint for sparse-index loads (Section 6.1.2, citing [28]) and the shared
memory whose hits are simply *not charged* by the cost builders.

Both models are deliberately simple, monotone and documented: they decide
*shape* (who wins and when the CPU falls off), not absolute truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.spec import CpuSpec, DeviceSpec


def cpu_cache_bandwidth_factor(
    spec: CpuSpec,
    working_set_bytes: float,
    hot_fraction: float = 0.3,
    cached_speedup: float = 6.0,
) -> float:
    """Effective-bandwidth multiplier for a CPU pass over a working set.

    Model: a ``hot_fraction`` of accesses go to a hot region (topic rows of
    frequent words, dense doc rows).  While the hot region fits in the LLC
    those accesses run at ``cached_speedup`` x DRAM bandwidth; as the
    working set grows the cached share decays like ``llc / working_set``
    (the standard cache-miss model for streaming-with-reuse workloads).

    Returns a factor >= 1 when the set fits in cache (cache makes the CPU
    *faster* than DRAM bandwidth), tending to 1.0 from above as the set
    grows — matching the paper's observation that big corpora erase the
    CPU's cache advantage.
    """
    if working_set_bytes < 0:
        raise ValueError("working set must be non-negative")
    llc = spec.llc_mb * 1e6
    if working_set_bytes <= llc:
        hit_rate = 1.0
    else:
        hit_rate = llc / working_set_bytes
    hot = hot_fraction * hit_rate
    # Harmonic blend of cached and uncached access times.
    factor = 1.0 / (hot / cached_speedup + (1.0 - hot))
    return factor


def gpu_l1_index_factor(spec: DeviceSpec, index_bytes_per_sm: float) -> float:
    """Bandwidth discount for sparse-index loads routed through L1.

    The paper lets "the sparse matrix index access instructions use the L1
    cache" [28].  If the per-SM index working set fits L1 the loads are
    nearly free (factor ~ ``0.25``: a quarter of the traffic reaches DRAM
    due to cold misses); otherwise the factor rises toward 1 (all traffic
    reaches DRAM).

    Returns the fraction of index traffic that must be charged to DRAM.
    """
    if index_bytes_per_sm < 0:
        raise ValueError("index working set must be non-negative")
    l1 = spec.l1_kb_per_sm * 1024.0
    if index_bytes_per_sm <= l1:
        return 0.25
    # Smooth degradation: hit rate ~ l1 / ws.
    hit = l1 / index_bytes_per_sm
    return 1.0 - 0.75 * hit


@dataclass(frozen=True)
class SharedMemoryBudget:
    """Checks that the per-block trees of Section 6.1 fit in shared memory.

    One thread block holds: the shared p2(k)/p*(k) index tree (K floats +
    the 32-way internal nodes) and 32 per-warp p1 trees over at most
    ``max_kd`` non-zeros each.  The constructor computes the footprint;
    :meth:`fits` compares to the device's per-SM shared memory.
    """

    num_topics: int
    max_kd: int
    warps_per_block: int = 32
    float_bytes: int = 4

    def __post_init__(self) -> None:
        if self.num_topics < 1 or self.max_kd < 0 or self.warps_per_block < 1:
            raise ValueError("invalid shared-memory budget parameters")

    @staticmethod
    def tree_nodes(leaves: int, fanout: int = 32) -> int:
        """Internal + leaf node count of a ``fanout``-ary index tree."""
        if leaves <= 0:
            return 0
        nodes = leaves
        level = leaves
        while level > 1:
            level = math.ceil(level / fanout)
            nodes += level
        return nodes

    @property
    def p2_tree_bytes(self) -> int:
        """One shared tree over all K topics (p*(k) values + prefix nodes)."""
        return self.tree_nodes(self.num_topics) * self.float_bytes

    @property
    def p1_trees_bytes(self) -> int:
        """Per-warp private trees over the document's Kd non-zeros."""
        return (
            self.warps_per_block
            * self.tree_nodes(self.max_kd)
            * self.float_bytes
        )

    @property
    def total_bytes(self) -> int:
        return self.p2_tree_bytes + self.p1_trees_bytes

    def fits(self, spec: DeviceSpec) -> bool:
        return self.total_bytes <= spec.shared_mem_per_sm_kb * 1024

    def max_tree_topics(self, spec: DeviceSpec) -> int:
        """Largest K whose shared p2 tree alone fits the device (diagnostic)."""
        budget = spec.shared_mem_per_sm_kb * 1024
        k = 1
        while self.tree_nodes(k * 2) * self.float_bytes <= budget:
            k *= 2
        return k
