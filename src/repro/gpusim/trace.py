"""Execution traces: inspect and export the simulated timeline.

Every operation a :class:`~repro.gpusim.device.SimulatedGPU` schedules is
recorded as a :class:`TraceEvent` (name, engine, start, end).  The trace
answers the questions the paper's Section 5.1 overlap argument raises —
*did* the chunk transfers actually ride under compute? — and exports to
the Chrome ``chrome://tracing`` / Perfetto JSON format for visual
inspection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled operation on one device engine."""

    device_id: int
    name: str  # kernel/transfer tag ("sampling", "transfer", ...)
    engine: str  # compute / copy_h2d / copy_d2h
    start: float  # seconds, shared simulated time domain
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: TraceEvent) -> bool:
        """True if the two events share any wall-clock interval."""
        return self.start < other.end and other.start < self.end


def busy_time(events: list[TraceEvent], engine: str | None = None) -> float:
    """Union length of the events' intervals (per engine if given).

    This is *occupied* time, not summed durations — overlapping intervals
    count once, so ``busy_time / span`` is genuine utilisation.
    """
    ivals = sorted(
        (e.start, e.end) for e in events if engine is None or e.engine == engine
    )
    total = 0.0
    cur_start, cur_end = None, None
    for s, e in ivals:
        if cur_end is None or s > cur_end:
            if cur_end is not None:
                total += cur_end - cur_start
            cur_start, cur_end = s, e
        else:
            cur_end = max(cur_end, e)
    if cur_end is not None:
        total += cur_end - cur_start
    return total


def overlap_time(events: list[TraceEvent], engine_a: str, engine_b: str) -> float:
    """Total time during which both engines were simultaneously busy.

    The Section 5.1 payoff metric: ``overlap_time(trace, "compute",
    "copy_h2d")`` measures how much transfer actually hid under compute.
    """
    a = sorted((e.start, e.end) for e in events if e.engine == engine_a)
    b = sorted((e.start, e.end) for e in events if e.engine == engine_b)
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        s = max(a[i][0], b[j][0])
        e = min(a[i][1], b[j][1])
        if s < e:
            total += e - s
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def export_chrome_trace(events: list[TraceEvent], path: str | Path) -> None:
    """Write the events as a Chrome/Perfetto trace JSON file.

    Devices map to processes, engines to threads; timestamps are in
    microseconds as the format requires.
    """
    records = [
        {
            "name": e.name,
            "cat": e.engine,
            "ph": "X",
            "pid": e.device_id,
            "tid": e.engine,
            "ts": e.start * 1e6,
            "dur": e.duration * 1e6,
        }
        for e in events
    ]
    from repro.core.snapshot import atomic_write_text

    atomic_write_text(
        path, json.dumps({"traceEvents": records, "displayTimeUnit": "ms"})
    )
