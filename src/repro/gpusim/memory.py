"""Device memory management with capacity enforcement.

The paper's Section 5.1 constraint — *"when deciding the value of M, we
need to make sure that one GPU's memory can accommodate at least one data
chunk"* (two chunks when overlapping transfers) — only bites if the
simulator actually enforces capacity.  This allocator does: every chunk,
model replica and staging buffer the trainer places on a device is
registered here, and exceeding capacity raises
:class:`DeviceOutOfMemoryError` exactly as ``cudaMalloc`` would fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class DeviceOutOfMemoryError(MemoryError):
    """Raised when an allocation would exceed device capacity."""


@dataclass
class Allocation:
    """One named allocation on a device."""

    name: str
    nbytes: int


@dataclass
class DeviceMemory:
    """Byte-accurate bookkeeping of one device's memory.

    Allocations are named so tests and error messages can say *what* blew
    the budget ("chunk[3]", "phi_replica", "staging[1]").
    """

    capacity_bytes: int
    _allocs: dict[str, Allocation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bytes}")

    @property
    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocs.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def alloc(self, name: str, nbytes: int) -> Allocation:
        """Reserve ``nbytes`` under ``name``.

        Raises
        ------
        DeviceOutOfMemoryError
            If the allocation does not fit.
        ValueError
            If the name is already in use or nbytes is negative.
        """
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {nbytes}")
        if name in self._allocs:
            raise ValueError(f"allocation {name!r} already exists")
        if nbytes > self.free_bytes:
            raise DeviceOutOfMemoryError(
                f"allocating {name!r} ({nbytes / 1e9:.3f} GB) exceeds device "
                f"capacity: {self.used_bytes / 1e9:.3f} GB used of "
                f"{self.capacity_bytes / 1e9:.3f} GB"
            )
        a = Allocation(name, nbytes)
        self._allocs[name] = a
        return a

    def free(self, name: str) -> None:
        """Release the allocation registered under ``name``."""
        if name not in self._allocs:
            raise KeyError(f"no allocation named {name!r}")
        del self._allocs[name]

    def has(self, name: str) -> bool:
        return name in self._allocs

    def resize(self, name: str, nbytes: int) -> None:
        """Grow or shrink an existing allocation in place."""
        if name not in self._allocs:
            raise KeyError(f"no allocation named {name!r}")
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        delta = nbytes - self._allocs[name].nbytes
        if delta > self.free_bytes:
            raise DeviceOutOfMemoryError(
                f"resizing {name!r} to {nbytes / 1e9:.3f} GB exceeds capacity"
            )
        self._allocs[name].nbytes = nbytes

    def reset(self) -> None:
        """Free everything (device teardown between experiments)."""
        self._allocs.clear()

    def allocations(self) -> dict[str, int]:
        """Snapshot of name -> bytes, for diagnostics."""
        return {name: a.nbytes for name, a in self._allocs.items()}
