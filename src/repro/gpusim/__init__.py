"""Simulated GPU substrate.

The reproduction substitutes the paper's physical GPUs with a functional +
analytical simulator (see DESIGN.md section 2 for the substitution
argument).  Kernels execute real NumPy math; this package accounts for
their simulated time with a roofline clock, byte-accurate device memory,
stream/engine timelines with genuine copy/compute overlap, and
latency+bandwidth interconnect models.
"""

from repro.gpusim.clock import CostLedger, KernelCost, ZERO_COST, cpu_kernel_time, gpu_kernel_time
from repro.gpusim.device import SimulatedGPU, p2p_copy
from repro.gpusim.interconnect import (
    ETHERNET_10G,
    HostLinkTopology,
    Link,
    NVLINK,
    NVLINK_TOPOLOGY,
    PCIE_3,
    PCIE_TOPOLOGY,
    broadcast_pairs,
    reduce_steps,
    tree_reduce_pairs,
)
from repro.gpusim.memory import DeviceMemory, DeviceOutOfMemoryError
from repro.gpusim.platform import (
    ALL_PLATFORMS,
    AMD_MI50_GCN,
    GTX_1080_PASCAL,
    MAXWELL_PLATFORM,
    PASCAL_PLATFORM,
    Platform,
    TITAN_X_MAXWELL,
    TITAN_XP_PASCAL,
    V100_VOLTA,
    VOLTA_PLATFORM,
    platform_by_name,
)
from repro.gpusim.spec import CpuSpec, DeviceSpec
from repro.gpusim.stream import Event, Stream, Timeline, barrier

__all__ = [
    "KernelCost",
    "ZERO_COST",
    "CostLedger",
    "gpu_kernel_time",
    "cpu_kernel_time",
    "SimulatedGPU",
    "p2p_copy",
    "DeviceMemory",
    "DeviceOutOfMemoryError",
    "DeviceSpec",
    "CpuSpec",
    "Link",
    "PCIE_3",
    "NVLINK",
    "ETHERNET_10G",
    "HostLinkTopology",
    "PCIE_TOPOLOGY",
    "NVLINK_TOPOLOGY",
    "reduce_steps",
    "tree_reduce_pairs",
    "broadcast_pairs",
    "Event",
    "Stream",
    "Timeline",
    "barrier",
    "Platform",
    "MAXWELL_PLATFORM",
    "PASCAL_PLATFORM",
    "VOLTA_PLATFORM",
    "ALL_PLATFORMS",
    "TITAN_X_MAXWELL",
    "TITAN_XP_PASCAL",
    "V100_VOLTA",
    "GTX_1080_PASCAL",
    "AMD_MI50_GCN",
    "platform_by_name",
]
