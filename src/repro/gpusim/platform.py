"""Table 2 platform presets and baseline-hardware specs.

Bandwidths, processor counts and memory sizes are the paper's numbers
(Table 2 and Section 7.1 prose); FLOPS are the public datasheet values.

Efficiency calibration
----------------------
``mem_efficiency`` is the single fitted constant per architecture.  It was
set once so that the Maxwell Titan X lands near the paper's 173.6 M
tokens/s on the NYTimes-shaped workload of ``benchmarks/bench_table4``;
Pascal and Volta values additionally encode the architectural gains the
paper observes beyond raw bandwidth (Volta's 4.03X over Maxwell exceeds
its 2.68X bandwidth ratio thanks to better atomics, more SMs and a larger
unified L1).  Nothing else is fitted: every other reported number is a
prediction of the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.spec import CpuSpec, DeviceSpec

# --- GPUs (Table 2) -----------------------------------------------------

TITAN_X_MAXWELL = DeviceSpec(
    name="TITAN X",
    arch="Maxwell",
    mem_bandwidth_gbps=336.0,
    peak_gflops=6_144.0,
    num_sms=24,
    shared_mem_per_sm_kb=96,
    l1_kb_per_sm=24,
    memory_gb=12.0,
    mem_efficiency=0.58,
    compute_efficiency=0.35,
    atomic_gops=12.0,
)

TITAN_XP_PASCAL = DeviceSpec(
    name="Titan Xp",
    arch="Pascal",
    mem_bandwidth_gbps=550.0,
    peak_gflops=12_150.0,
    num_sms=28,  # paper's count for its Titan Xp parts
    shared_mem_per_sm_kb=96,
    l1_kb_per_sm=48,
    memory_gb=12.0,
    mem_efficiency=0.43,
    compute_efficiency=0.35,
    atomic_gops=20.0,
)

V100_VOLTA = DeviceSpec(
    name="V100",
    arch="Volta",
    mem_bandwidth_gbps=900.0,
    peak_gflops=14_000.0,
    num_sms=80,
    shared_mem_per_sm_kb=96,
    l1_kb_per_sm=128,
    memory_gb=16.0,
    mem_efficiency=0.80,
    compute_efficiency=0.45,
    atomic_gops=64.0,
)

#: SaberLDA's evaluation GPU (Section 7.2): "GTX 1080 ... at the same
#: generation with our Titan platform and it's more powerful than Titan".
GTX_1080_PASCAL = DeviceSpec(
    name="GTX 1080",
    arch="Pascal",
    mem_bandwidth_gbps=320.0,
    peak_gflops=8_873.0,
    num_sms=20,
    shared_mem_per_sm_kb=96,
    l1_kb_per_sm=48,
    memory_gb=8.0,
    mem_efficiency=0.43,
    compute_efficiency=0.35,
    atomic_gops=20.0,
)

#: An AMD-class device (Section 2.2: warps are "64 on AMD GPUs").  Not a
#: Table 2 platform; exists to exercise the warp-size generality of the
#: kernel geometry and index-tree fanout (MI50-class numbers).
AMD_MI50_GCN = DeviceSpec(
    name="MI50",
    arch="GCN",
    mem_bandwidth_gbps=1024.0,
    peak_gflops=13_300.0,
    num_sms=60,
    shared_mem_per_sm_kb=64,
    l1_kb_per_sm=16,
    memory_gb=16.0,
    mem_efficiency=0.55,
    compute_efficiency=0.35,
    atomic_gops=24.0,
    warp_size=64,
)

# --- Host CPUs (Table 2) --------------------------------------------------

XEON_E5_2670 = CpuSpec(
    name="Xeon E5-2670 x2", mem_bandwidth_gbps=51.2, peak_gflops=332.8,
    cores=16, llc_mb=20.0,
)
XEON_E5_2650_V3 = CpuSpec(
    name="Xeon E5-2650 v3 x2", mem_bandwidth_gbps=68.0, peak_gflops=640.0,
    cores=20, llc_mb=25.0,
)
#: The Volta platform host; the paper quotes 470 GFLOPS / 51.2 GB/s for it.
XEON_E5_2690_V4 = CpuSpec(
    name="Xeon E5-2690 v4 x2", mem_bandwidth_gbps=51.2, peak_gflops=470.0,
    cores=28, llc_mb=35.0,
)


@dataclass(frozen=True)
class Platform:
    """One row of Table 2: a host CPU plus ``num_gpus`` identical GPUs."""

    name: str
    cpu: CpuSpec
    gpu: DeviceSpec
    num_gpus: int

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")


MAXWELL_PLATFORM = Platform("Maxwell", XEON_E5_2670, TITAN_X_MAXWELL, 1)
PASCAL_PLATFORM = Platform("Pascal", XEON_E5_2650_V3, TITAN_XP_PASCAL, 4)
VOLTA_PLATFORM = Platform("Volta", XEON_E5_2690_V4, V100_VOLTA, 2)

#: The three evaluation platforms in Table 2 order.
ALL_PLATFORMS = (MAXWELL_PLATFORM, PASCAL_PLATFORM, VOLTA_PLATFORM)


def platform_by_name(name: str) -> Platform:
    """Look up a Table 2 platform by (case-insensitive) name."""
    for p in ALL_PLATFORMS:
        if p.name.lower() == name.lower():
            return p
    raise KeyError(
        f"unknown platform {name!r}; choose from "
        f"{[p.name for p in ALL_PLATFORMS]}"
    )
