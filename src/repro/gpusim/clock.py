"""Roofline cost accounting: kernel costs -> simulated seconds.

Every kernel in the reproduction executes real math over real arrays and
reports a :class:`KernelCost` whose byte/flop counts come from the same
per-step formulas as Table 1, applied to the *actual* runtime sparsity of
the model.  The clock converts a cost to time with the standard roofline
rule (Williams et al., cited as [26] by the paper):

    t = launch + max(bytes / BW_eff, flops / FLOPS_eff) + atomics / A_eff

The memory term dominates for LDA (Flops/Byte ~ 0.27 vs machine balance
>= 9), which is precisely the paper's Section 3 conclusion — the model
makes that conclusion *operational*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.spec import CpuSpec, DeviceSpec


@dataclass(frozen=True)
class KernelCost:
    """Resource consumption of one kernel launch.

    ``bytes_read``/``bytes_written`` count off-chip traffic only: data
    served from shared memory or assumed L1-resident (e.g. the shared
    p2-tree, the cached p*(k) row) must not be charged — that is the whole
    point of the paper's Section 6 optimizations.
    """

    bytes_read: float = 0.0
    bytes_written: float = 0.0
    flops: float = 0.0
    atomic_ops: float = 0.0

    def __post_init__(self) -> None:
        if min(self.bytes_read, self.bytes_written, self.flops, self.atomic_ops) < 0:
            raise ValueError("cost components must be non-negative")

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def flops_per_byte(self) -> float:
        """Arithmetic intensity (Eq. 3). Infinite if no memory traffic."""
        if self.bytes_total == 0:
            return float("inf")
        return self.flops / self.bytes_total

    def __add__(self, other: KernelCost) -> KernelCost:
        return KernelCost(
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
            self.flops + other.flops,
            self.atomic_ops + other.atomic_ops,
        )

    def scaled(self, factor: float) -> KernelCost:
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return KernelCost(
            self.bytes_read * factor,
            self.bytes_written * factor,
            self.flops * factor,
            self.atomic_ops * factor,
        )


ZERO_COST = KernelCost()


def gpu_kernel_time(spec: DeviceSpec, cost: KernelCost) -> float:
    """Simulated seconds for one kernel launch on ``spec``."""
    mem_t = cost.bytes_total / spec.effective_bandwidth
    comp_t = cost.flops / spec.effective_flops
    atomic_t = cost.atomic_ops / (spec.atomic_gops * 1e9)
    return spec.kernel_launch_us * 1e-6 + max(mem_t, comp_t) + atomic_t


def cpu_kernel_time(
    spec: CpuSpec, cost: KernelCost, bandwidth_factor: float = 1.0
) -> float:
    """Simulated seconds for a CPU pass.

    ``bandwidth_factor`` in (0, 1] comes from the cache model: it scales
    the effective bandwidth down when the working set spills the LLC.
    """
    if not (0 < bandwidth_factor <= 1):
        raise ValueError(f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}")
    bw = spec.mem_bandwidth_gbps * 1e9 * spec.mem_efficiency * bandwidth_factor
    mem_t = cost.bytes_total / bw
    comp_t = cost.flops / (spec.peak_gflops * 1e9 * 0.5)
    return max(mem_t, comp_t)


@dataclass
class CostLedger:
    """Accumulates per-kernel costs and times, keyed by kernel name.

    This is the data source for Table 5 (execution-time breakdown): the
    trainer tags every launch with its kernel name ("sampling",
    "update_theta", "update_phi", "sync", "transfer") and the ledger
    aggregates simulated seconds per tag.
    """

    seconds: dict[str, float] = field(default_factory=dict)
    costs: dict[str, KernelCost] = field(default_factory=dict)
    launches: dict[str, int] = field(default_factory=dict)

    def charge(self, name: str, cost: KernelCost, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.costs[name] = self.costs.get(name, ZERO_COST) + cost
        self.launches[name] = self.launches.get(name, 0) + 1

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Share of total time per kernel (the Table 5 percentages)."""
        total = self.total_seconds
        if total == 0:
            return {k: 0.0 for k in self.seconds}
        return {k: v / total for k, v in self.seconds.items()}

    def merge(self, other: CostLedger) -> None:
        for k in other.seconds:
            self.charge(k, other.costs[k], other.seconds[k])
            # charge() bumps launches by 1; fix up to the true count.
            self.launches[k] += other.launches[k] - 1
