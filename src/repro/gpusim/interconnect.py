"""Interconnect models: PCIe, NVLink, Ethernet (Sections 3.2 and 5).

Transfers are modeled as ``latency + bytes / bandwidth`` — the same
first-order model the paper uses when it compares PCIe 3.0 (16 GB/s) to
the 10 Gb/s Ethernet of LDA* [34] and to NVLink (300 GB/s).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Link:
    """A point-to-point link."""

    name: str
    bandwidth_gbps: float  # GB/s (bytes, not bits)
    latency_us: float = 10.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_gbps}")
        if self.latency_us < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_us}")

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across this link."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbps * 1e9)


#: PCIe 3.0 x16: "up to 16GB/s" (Section 3.2 / Section 7 preamble).
PCIE_3 = Link("PCIe 3.0 x16", bandwidth_gbps=16.0, latency_us=10.0)

#: NVLink as quoted for DGX-1: "up to 300GB/s" aggregate.
NVLINK = Link("NVLink", bandwidth_gbps=300.0, latency_us=5.0)

#: The 10 Gb/s Ethernet used by LDA* [34]: 10 Gbit/s = 1.25 GB/s.
ETHERNET_10G = Link("10GbE", bandwidth_gbps=1.25, latency_us=50.0)


@dataclass(frozen=True)
class HostLinkTopology:
    """Connectivity of one machine: host<->GPU and GPU<->GPU links.

    The paper's platforms connect everything over PCIe 3.0; peer-to-peer
    GPU copies also traverse PCIe.  A topology with ``p2p=NVLINK`` models
    a DGX-class box (used by the interconnect ablation bench).
    """

    host_to_device: Link = PCIE_3
    device_to_device: Link = PCIE_3

    def h2d_time(self, nbytes: float) -> float:
        return self.host_to_device.transfer_time(nbytes)

    def d2h_time(self, nbytes: float) -> float:
        return self.host_to_device.transfer_time(nbytes)

    def p2p_time(self, nbytes: float) -> float:
        return self.device_to_device.transfer_time(nbytes)


PCIE_TOPOLOGY = HostLinkTopology(PCIE_3, PCIE_3)
NVLINK_TOPOLOGY = HostLinkTopology(PCIE_3, NVLINK)


def reduce_steps(num_devices: int) -> int:
    """Number of parallel steps in the binary-tree reduce of Figure 4.

    ``ceil(log2(G))`` — reductions within one step run in parallel, so the
    paper notes "the computation complexity of reduction is log G".
    """
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    steps = 0
    span = 1
    while span < num_devices:
        span *= 2
        steps += 1
    return steps


def tree_reduce_pairs(num_devices: int) -> list[list[tuple[int, int]]]:
    """The (src, dst) transfer pairs of each reduce step (Figure 4).

    Step 0 for G=4: GPU1->GPU0 and GPU3->GPU2 in parallel; step 1:
    GPU2->GPU0.  Devices that received in step ``s`` add the incoming
    replica to their own before step ``s+1``.
    """
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    steps: list[list[tuple[int, int]]] = []
    span = 1
    while span < num_devices:
        pairs = []
        for dst in range(0, num_devices, span * 2):
            src = dst + span
            if src < num_devices:
                pairs.append((src, dst))
        steps.append(pairs)
        span *= 2
    return steps


def broadcast_pairs(num_devices: int) -> list[list[tuple[int, int]]]:
    """The (src, dst) transfer pairs of each broadcast step (inverse tree)."""
    return [
        [(dst, src) for (src, dst) in step]
        for step in reversed(tree_reduce_pairs(num_devices))
    ]
