"""Deterministic, partitionable random streams.

GPU LDA samplers need one independent RNG per sampler (warp); the
reproduction needs runs to be bit-reproducible across chunk counts and
GPU counts so tests can compare configurations.  NumPy's ``SeedSequence``
spawning gives exactly that: every (run seed, iteration, chunk) triple
maps to an independent, reproducible stream regardless of the order in
which chunks execute or which simulated device they land on.
"""

from __future__ import annotations

import numpy as np


class RngPool:
    """Derives independent per-(iteration, chunk) generators from one seed.

    Two pools with the same seed produce identical streams; streams for
    different (iteration, chunk) keys are statistically independent
    (SeedSequence guarantees).  This makes multi-GPU runs reproducible and
    *schedule-invariant*: GPU assignment order cannot change the draws.
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def chunk_stream(self, iteration: int, chunk_id: int) -> np.random.Generator:
        """Generator for sampling chunk ``chunk_id`` at ``iteration``."""
        if iteration < 0 or chunk_id < 0:
            raise ValueError("iteration and chunk_id must be non-negative")
        ss = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(1, iteration, chunk_id)
        )
        return np.random.default_rng(ss)

    def init_stream(self) -> np.random.Generator:
        """Generator for the random topic initialisation."""
        ss = np.random.SeedSequence(entropy=self._seed, spawn_key=(0,))
        return np.random.default_rng(ss)

    def named_stream(self, *key: int) -> np.random.Generator:
        """Generator for any other purpose, keyed by integers."""
        if any(k < 0 for k in key):
            raise ValueError("stream key components must be non-negative")
        ss = np.random.SeedSequence(entropy=self._seed, spawn_key=(2, *key))
        return np.random.default_rng(ss)
