"""Multi-GPU phi synchronization (Section 5.2, Figure 4).

After every iteration each device holds ``phi_g = phi_ref + delta_g``
where ``phi_ref`` is the model all replicas started the iteration from
and ``delta_g`` contains only GPU ``g``'s own chunks' updates.  The
reconciled model is

    phi_new = phi_ref + sum_g (phi_g - phi_ref)        (Eq. 4's intent)

computed with a binary **tree reduce** (GPU1->GPU0 and GPU3->GPU2 in
parallel, then GPU2->GPU0) followed by a tree **broadcast** of the result
— ``log2 G`` peer-to-peer steps each, performed entirely on the GPUs
because "the CPU is slower than GPUs in terms of matrix adding".

Token conservation is exact: every token's decrement/increment pair is
applied exactly once globally, so ``phi_new.sum() == T`` always (tested).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.clock import KernelCost
from repro.gpusim.device import SimulatedGPU, p2p_copy
from repro.gpusim.interconnect import broadcast_pairs, tree_reduce_pairs


def reconcile_phi(
    phi_ref: np.ndarray,
    replicas: list[np.ndarray],
) -> np.ndarray:
    """Functional reconciliation: ``phi_ref + sum of replica deltas``.

    With one replica this degenerates to that replica (no copy semantics:
    a fresh array is always returned).
    """
    if not replicas:
        raise ValueError("need at least one replica")
    for r in replicas:
        if r.shape != phi_ref.shape:
            raise ValueError("replica shape mismatch")
    out = phi_ref.astype(np.int64).copy()
    for r in replicas:
        out += r.astype(np.int64) - phi_ref.astype(np.int64)
    if np.any(out < 0):
        raise AssertionError("negative count after reconciliation")
    return out.astype(phi_ref.dtype)


def simulate_phi_sync(
    gpus: list[SimulatedGPU],
    phi_bytes: int,
    kernel_name: str = "sync",
) -> float:
    """Charge the Figure 4 reduce+broadcast on the device timelines.

    Each reduce step is a peer copy of one phi replica followed by an
    element-wise add on the receiving device (read both operands, write
    one); steps within a level run in parallel on disjoint device pairs.
    Returns the completion time of the broadcast.
    """
    if not gpus:
        raise ValueError("no devices")
    if phi_bytes < 0:
        raise ValueError("phi_bytes must be non-negative")
    if len(gpus) == 1:
        return gpus[0].sync()
    end = 0.0
    for step in tree_reduce_pairs(len(gpus)):
        for src, dst in step:
            p2p_copy(gpus[src], gpus[dst], phi_bytes, name=kernel_name)
            add_cost = KernelCost(
                bytes_read=2.0 * phi_bytes, bytes_written=float(phi_bytes)
            )
            end = gpus[dst].launch(kernel_name, add_cost)
    for step in broadcast_pairs(len(gpus)):
        for src, dst in step:
            end = p2p_copy(gpus[src], gpus[dst], phi_bytes, name=kernel_name)
    return end


def synchronize(
    phi_ref: np.ndarray,
    device_phis: list[np.ndarray],
    device_totals: list[np.ndarray],
    gpus: list[SimulatedGPU] | None = None,
    phi_bytes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Full sync: functional reconciliation + timeline charging.

    Broadcasts the reconciled model back into every ``device_phis[g]`` /
    ``device_totals[g]`` array in place (they are the replicas the next
    iteration samples against) and returns ``(phi_new, totals_new)``.
    """
    phi_new = reconcile_phi(phi_ref, device_phis)
    totals_new = phi_new.sum(axis=1, dtype=np.int64)
    for g in range(len(device_phis)):
        device_phis[g][...] = phi_new
        device_totals[g][...] = totals_new
    if gpus is not None and len(gpus) > 1:
        if phi_bytes is None:
            phi_bytes = int(phi_new.nbytes)
        simulate_phi_sync(gpus, phi_bytes)
    return phi_new, totals_new
