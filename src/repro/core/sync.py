"""Multi-GPU phi synchronization (Section 5.2, Figure 4).

After every iteration each device holds ``phi_g = phi_ref + delta_g``
where ``phi_ref`` is the model all replicas started the iteration from
and ``delta_g`` contains only GPU ``g``'s own chunks' updates.  The
reconciled model is

    phi_new = phi_ref + sum_g (phi_g - phi_ref)        (Eq. 4's intent)

computed with a binary **tree reduce** (GPU1->GPU0 and GPU3->GPU2 in
parallel, then GPU2->GPU0) followed by a tree **broadcast** of the result
— ``log2 G`` peer-to-peer steps each, performed entirely on the GPUs
because "the CPU is slower than GPUs in terms of matrix adding".

Token conservation is exact: every token's decrement/increment pair is
applied exactly once globally, so ``phi_new.sum() == T`` always (tested).
"""

from __future__ import annotations

import numpy as np

from repro import faults
from repro.gpusim.clock import KernelCost
from repro.gpusim.device import SimulatedGPU, p2p_copy
from repro.gpusim.interconnect import broadcast_pairs, tree_reduce_pairs


def reconcile_phi(
    phi_ref: np.ndarray,
    replicas: list[np.ndarray],
) -> np.ndarray:
    """Functional reconciliation: ``phi_ref + sum of replica deltas``.

    With one replica this degenerates to that replica (no copy semantics:
    a fresh array is always returned).
    """
    if not replicas:
        raise ValueError("need at least one replica")
    for r in replicas:
        if r.shape != phi_ref.shape:
            raise ValueError("replica shape mismatch")
    out = phi_ref.astype(np.int64).copy()
    for r in replicas:
        out += r.astype(np.int64) - phi_ref.astype(np.int64)
    if np.any(out < 0):
        raise AssertionError("negative count after reconciliation")
    return out.astype(phi_ref.dtype)


def reconcile_prereduced(
    phi_ref: np.ndarray,
    worker_delta_phis: list[np.ndarray],
) -> np.ndarray:
    """Reconciliation from per-worker pre-reduced deltas.

    Each entry of ``worker_delta_phis`` is one OS worker's summed signed
    update over every replica it owns, accumulated chunk pass by chunk
    pass (see :func:`repro.core.updates.apply_phi_update`).  Because the
    counts are integers, ``phi_ref + sum_w delta_w`` is exactly
    ``phi_ref + sum_g (phi_g - phi_ref)`` regardless of how groups were
    assigned to workers — bit-identical to :func:`reconcile_phi`, but
    the master adds ``W`` matrices instead of differencing ``G`` replicas
    (the O(G*K*V) -> O(W*K*V) merge reduction of the overlap sync path).
    """
    if not worker_delta_phis:
        raise ValueError("need at least one worker delta")
    out = phi_ref.astype(np.int64)  # astype always copies here
    for delta in worker_delta_phis:
        if delta.shape != phi_ref.shape:
            raise ValueError("delta shape mismatch")
        out += delta
    if np.any(out < 0):
        raise AssertionError("negative count after reconciliation")
    return out.astype(phi_ref.dtype)


def synchronize_prereduced(
    phi_ref: np.ndarray,
    totals_ref: np.ndarray,
    worker_deltas: list[tuple[np.ndarray, np.ndarray]],
    device_phis: list[np.ndarray] | None = None,
    device_totals: list[np.ndarray] | None = None,
    gpus: list[SimulatedGPU] | None = None,
    phi_bytes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Full sync from per-worker ``(delta_phi, delta_totals)`` pairs.

    Functionally identical to :func:`synchronize` (integer arithmetic —
    same ``phi_new``/``totals_new`` to the bit) with the master-side
    merge cut to one add per OS worker.  ``device_phis``/``device_totals``
    are broadcast into when given; pass ``None`` in overlap mode, where
    the workers copy the reconciled model into their own replicas at the
    next kick-off instead.  The simulated Figure 4 tree reduce is charged
    unchanged: overlap is a *host* wall-clock optimisation and must not
    move the simulated clocks.
    """
    # Before any mutation or clock charge, so a caller-side retry after
    # an injected transient failure replays the sync cleanly.
    faults.raise_if("merge_fail", sync="prereduce")
    phi_new = reconcile_prereduced(phi_ref, [d for d, _ in worker_deltas])
    totals_new = totals_ref.astype(np.int64)  # astype always copies here
    for _, dtot in worker_deltas:
        totals_new += dtot
    if device_phis is not None:
        for g in range(len(device_phis)):
            device_phis[g][...] = phi_new
            device_totals[g][...] = totals_new
    if gpus is not None and len(gpus) > 1:
        if phi_bytes is None:
            phi_bytes = int(phi_new.nbytes)
        simulate_phi_sync(gpus, phi_bytes)
    return phi_new, totals_new


def simulate_phi_sync(
    gpus: list[SimulatedGPU],
    phi_bytes: int,
    kernel_name: str = "sync",
) -> float:
    """Charge the Figure 4 reduce+broadcast on the device timelines.

    Each reduce step is a peer copy of one phi replica followed by an
    element-wise add on the receiving device (read both operands, write
    one); steps within a level run in parallel on disjoint device pairs.
    Returns the completion time of the broadcast.
    """
    if not gpus:
        raise ValueError("no devices")
    if phi_bytes < 0:
        raise ValueError("phi_bytes must be non-negative")
    if len(gpus) == 1:
        return gpus[0].sync()
    end = 0.0
    for step in tree_reduce_pairs(len(gpus)):
        for src, dst in step:
            p2p_copy(gpus[src], gpus[dst], phi_bytes, name=kernel_name)
            add_cost = KernelCost(
                bytes_read=2.0 * phi_bytes, bytes_written=float(phi_bytes)
            )
            end = gpus[dst].launch(kernel_name, add_cost)
    for step in broadcast_pairs(len(gpus)):
        for src, dst in step:
            end = p2p_copy(gpus[src], gpus[dst], phi_bytes, name=kernel_name)
    return end


def synchronize(
    phi_ref: np.ndarray,
    device_phis: list[np.ndarray],
    device_totals: list[np.ndarray],
    gpus: list[SimulatedGPU] | None = None,
    phi_bytes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Full sync: functional reconciliation + timeline charging.

    Broadcasts the reconciled model back into every ``device_phis[g]`` /
    ``device_totals[g]`` array in place (they are the replicas the next
    iteration samples against) and returns ``(phi_new, totals_new)``.
    """
    faults.raise_if("merge_fail", sync="barrier")
    phi_new = reconcile_phi(phi_ref, device_phis)
    totals_new = phi_new.sum(axis=1, dtype=np.int64)
    for g in range(len(device_phis)):
        device_phis[g][...] = phi_new
        device_totals[g][...] = totals_new
    if gpus is not None and len(gpus) > 1:
        if phi_bytes is None:
            phi_bytes = int(phi_new.nbytes)
        simulate_phi_sync(gpus, phi_bytes)
    return phi_new, totals_new
