"""The CuLDA_CGS sampling kernel (Algorithm 2, Sections 6.1.1-6.1.3).

One chunk pass reassigns a topic to every token of the chunk against the
chunk-start model snapshot, with the token's **own** current assignment
excluded from the counts (proper CGS exclusion).  The decomposition of
Eq. 6/8 is used throughout:

    p*(k)  = (phi[k,v] + beta) / (topic_totals[k] + beta*V)
    p1(k)  = theta[d,k] * p*(k)          (sparse: Kd non-zeros)
    p2(k)  = alpha * p*(k)               (dense: K entries, shared per word)
    S = sum_k p1(k),  Q = sum_k p2(k)

A draw takes bucket p1 with probability ``S / (S + Q)``; inside a bucket
the draw is a prefix-sum search (the Figure 5 index tree).

Mapping to the paper's GPU execution
------------------------------------
The paper runs one warp per token-sampler, 32 samplers per thread block,
all samplers of a block on tokens of the *same word* so they share the
p*(k)/p2 index tree in shared memory.  The SIMD expression of that design
in NumPy is *word-batched vectorization*: every per-word quantity (p*,
its prefix sums) is computed once per word, and every per-token quantity
is a vector op over all tokens at once.  All searches are
``searchsorted`` over prefix sums — bit-identical to the index-tree
descent (see :mod:`repro.core.tree` and its equivalence tests).

Exclusion adjustment
--------------------
Excluding token ``j``'s own count changes the snapshot quantities in O(1)
places: ``phi[z_j, v] -= 1``, ``topic_totals[z_j] -= 1`` and
``theta[d_j, z_j] -= 1``.  Each affects only the ``z_j`` entry of p*(k) /
p1(k), so S, Q and both prefix-sum searches are corrected with
constant-time per-token adjustments (a shifted-CDF three-case search for
p2, a single-entry rewrite for p1) — never a per-token rebuild of the
shared structures.  This is exactly why the block-shared tree is sound.

Workspace reuse and compute dtype
---------------------------------
Every large temporary of this kernel (the K x Wp shared trees, the
sum-Kd gather arrays, the per-token vectors) is drawn from a
:class:`repro.perf.Workspace` when one is passed, so steady-state
iterations reuse buffers instead of reallocating them — the NumPy
analogue of the static device buffers a real GPU kernel would use.
Chunk-invariant data (present words, token->word-column map) is
memoised per chunk inside the workspace, mirroring the paper's one-time
CPU preprocessing.  With ``workspace=None`` (or any float64 workspace)
the arithmetic is **bit-identical** to the historical allocating kernel
(asserted by tests/test_golden_regression.py).  A float32 workspace
selects the opt-in reduced-precision path: same algorithm, half the
bandwidth, a different but statistically equivalent chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costs import SamplingStats, tree_depth_for
from repro.core.sparse import CsrCounts
from repro.corpus.encoding import DeviceChunk
from repro.perf import Workspace

#: dtype instances for hot-path Workspace.take calls (no per-call np.dtype())
_I64 = np.dtype(np.int64)
_I32 = np.dtype(np.int32)
_BOOL = np.dtype(np.bool_)


@dataclass(frozen=True)
class SampleResult:
    """Output of one chunk sampling pass."""

    new_topics: np.ndarray  # same dtype/order as the input topics
    stats: SamplingStats


def _fill_random(rng: np.random.Generator, out: np.ndarray) -> np.ndarray:
    """``rng.random`` into a preallocated buffer (dtype-matched)."""
    rng.random(out=out, dtype=out.dtype.type)
    return out


def index_dtype_for(n: int, num_topics: int, wp: int) -> np.dtype:
    """Index dtype of the kernel's nnz-sized gather/scatter helpers.

    Token/topic products fit 32-bit arithmetic at any realistic scale;
    fall back to 64-bit when the largest flattened index the kernel
    forms — ``n * K`` (the p1 target keys) or ``K * Wp`` (the flattened
    shared-tree gather) — would overflow int32.  Index bandwidth on the
    nnz-sized arrays is the kernel's memory bottleneck, hence the
    aggressive 32-bit default.
    """
    if n * num_topics >= 2**31 or num_topics * wp >= 2**31:
        return _I64
    return _I32


def sample_chunk(
    chunk: DeviceChunk,
    topics: np.ndarray,
    theta: CsrCounts,
    phi: np.ndarray,
    topic_totals: np.ndarray,
    alpha: float,
    beta: float,
    rng: np.random.Generator,
    workspace: Workspace | None = None,
) -> SampleResult:
    """Sample a new topic for every token of ``chunk``.

    Parameters
    ----------
    chunk:
        Word-first encoded chunk (see :mod:`repro.corpus.encoding`).
    topics:
        Current topic per token, aligned with the chunk's token order.
        The input array is not modified.
    theta:
        The chunk's document-topic CSR, consistent with ``topics``.
    phi, topic_totals:
        The device's model replica (consistent with the union of all
        chunk assignments it has seen — the chunk-start snapshot).
    alpha, beta:
        Hyper-parameters of Eq. 1.
    rng:
        Per-(iteration, chunk) generator from :class:`~repro.core.rng.RngPool`.
    workspace:
        Optional :class:`~repro.perf.Workspace` supplying reusable
        buffers and the compute dtype.  ``None`` allocates fresh float64
        buffers (identical results, more allocator churn).

    Returns
    -------
    SampleResult
        New topics plus the measured statistics that drive cost accounting.
    """
    n = chunk.num_tokens
    num_topics, num_words = phi.shape
    if topics.shape[0] != n:
        raise ValueError("topics length must equal chunk token count")
    if theta.num_rows != chunk.num_local_docs or theta.num_cols != num_topics:
        raise ValueError("theta shape inconsistent with chunk/model")
    if topic_totals.shape[0] != num_topics:
        raise ValueError("topic_totals length must be K")
    if n == 0:
        return SampleResult(
            new_topics=topics.copy(),
            stats=SamplingStats(0, 0, 0, 0, 0, 0, num_topics, tree_depth_for(num_topics)),
        )

    ws = workspace if workspace is not None else Workspace()
    beta_v = beta * num_words

    # ---- chunk-invariant data (CPU preprocessing, done once per chunk) ---
    def _build_static():
        words64 = chunk.token_words.astype(np.int64)
        docs64 = chunk.token_docs.astype(np.int64)
        spans = np.diff(chunk.word_offsets)
        present = np.nonzero(spans)[0]
        counts_present = spans[present]
        # token -> present-word column index (tokens are word-first sorted).
        wcol = np.repeat(
            np.arange(present.shape[0], dtype=np.int64), counts_present
        )
        for a in (words64, docs64, present, wcol):
            a.setflags(write=False)
        return words64, docs64, present, wcol

    words, docs, present, wcol = ws.memo(
        ("chunk-static", int(chunk.spec.chunk_id)), _build_static
    )
    wp = present.shape[0]

    z_old = ws.take("z_old", n, _I64)
    np.copyto(z_old, topics, casting="safe")

    # ---- per-word shared structures (the block-shared p* tree) ----------
    denom = ws.take("denom", num_topics)
    np.add(topic_totals, beta_v, out=denom, casting="same_kind")  # K
    phi_g = ws.take("phi_gather", (num_topics, wp), phi.dtype)
    np.take(phi, present, axis=1, out=phi_g)
    # p_sub[k, c] = p*(k) for present word c; one column per word.
    p_sub = ws.take("p_sub", (num_topics, wp))
    np.add(phi_g, beta, out=p_sub, casting="same_kind")
    np.divide(p_sub, denom[:, None], out=p_sub)
    p_w = ws.take("p_w", wp)  # per-word total P = sum_k p*(k)
    np.sum(p_sub, axis=0, out=p_w)
    cdf_sub = ws.take("cdf_sub", (num_topics, wp))  # K x Wp prefix sums
    np.cumsum(p_sub, axis=0, out=cdf_sub)
    # Column-major flattened, per-column normalised CDF for one-shot
    # vectorised per-column searches (the SIMD index-tree descent).
    norm = ws.take("norm_cdf", (num_topics, wp))
    np.divide(cdf_sub, p_w[None, :], out=norm)
    flat2d = ws.take("flat_cdf", (wp, num_topics))
    np.copyto(flat2d, norm.T)
    np.add(flat2d, ws.arange(wp)[:, None], out=flat2d, casting="same_kind")
    flat_cdf = flat2d.reshape(-1)

    # ---- per-token exclusion scalars ------------------------------------
    tokflat = ws.take("tok_flat_idx", n, _I64)
    np.multiply(z_old, num_words, out=tokflat)
    np.add(tokflat, words, out=tokflat)
    phi_zv = ws.take("phi_zv", n, phi.dtype)
    np.take(phi.reshape(-1), tokflat, out=phi_zv)
    tot_z = ws.take("tot_z", n, topic_totals.dtype)
    np.take(topic_totals, z_old, out=tot_z)
    p_star_z = ws.take("p_star_z", n)
    den_z = ws.take("den_z", n)
    np.add(phi_zv, beta, out=p_star_z, casting="same_kind")
    np.add(tot_z, beta_v, out=den_z, casting="same_kind")
    np.divide(p_star_z, den_z, out=p_star_z)
    p_z_excl = ws.take("p_z_excl", n)
    np.subtract(phi_zv, 1.0, out=p_z_excl, casting="same_kind")
    np.add(p_z_excl, beta, out=p_z_excl)
    np.subtract(tot_z, 1.0, out=den_z, casting="same_kind")
    np.add(den_z, beta_v, out=den_z)
    np.divide(p_z_excl, den_z, out=p_z_excl)

    # ---- compute S: walk each token's theta row (sum Kd work) -----------
    starts = ws.take("row_starts", n, _I64)
    np.take(theta.indptr, docs, out=starts)
    lens = ws.take("row_lens", n, _I64)
    np.take(theta.indptr[1:], docs, out=lens)
    np.subtract(lens, starts, out=lens)
    seg_offsets = ws.take("seg_offsets", n + 1, _I64)
    seg_offsets[0] = 0
    np.cumsum(lens, out=seg_offsets[1:])
    total_nnz = int(seg_offsets[-1])
    idx_t = index_dtype_for(n, num_topics, wp)
    bnd = seg_offsets[1:-1]  # segment-start slots for tokens 1..n-1

    # Every nnz-sized helper below is piecewise-constant (or piecewise
    # arithmetic) over the segments, so it is materialised with a
    # boundary-delta scatter + cumsum — sequential passes, no gathers.
    # Offsets are strictly increasing because every token's document has
    # at least one theta non-zero.
    seg_ids = ws.zeros("seg_ids", total_nnz, idx_t)
    seg_ids[bnd] = 1
    np.cumsum(seg_ids, dtype=idx_t, out=seg_ids)
    # pos[j] walks each segment [starts[i], starts[i]+lens[i]): delta 1
    # inside a segment, boundary delta rebases to the next row's start.
    pos = ws.take("gather_pos", total_nnz, idx_t)
    pos[...] = 1
    pos[0] = starts[0]
    db = ws.take("boundary_delta", n - 1, _I64)
    np.subtract(starts[1:], starts[:-1], out=db)
    np.subtract(db, lens[:-1], out=db)
    np.add(db, 1, out=db)
    pos[bnd] = db
    np.cumsum(pos, dtype=idx_t, out=pos)
    # wcol_seg[j] = wcol[seg_ids[j]] via the same delta trick.
    wcol_seg = ws.zeros("wcol_seg", total_nnz, idx_t)
    wcol_seg[0] = wcol[0]
    dwc = ws.take("wcol_delta", n - 1, idx_t)
    np.subtract(wcol[1:], wcol[:-1], out=dwc, casting="same_kind")
    wcol_seg[bnd] = dwc
    np.cumsum(wcol_seg, dtype=idx_t, out=wcol_seg)

    gcols = ws.take("gcols", total_nnz, theta.indices.dtype)
    np.take(theta.indices, pos, out=gcols)
    gvals = ws.take("gvals", total_nnz, theta.data.dtype)
    np.take(theta.data, pos, out=gvals)
    # flat gather from p_sub: row-major (k, c) -> k*Wp + c, gathered
    # straight into w1 and scaled in place (one nnz-sized pass saved).
    flat_pos = ws.take("flat_pos", total_nnz, idx_t)
    np.multiply(gcols, idx_t.type(wp), out=flat_pos)
    np.add(flat_pos, wcol_seg, out=flat_pos)
    w1 = ws.take("w1", total_nnz)
    np.take(p_sub.reshape(-1), flat_pos, out=w1)
    np.multiply(w1, gvals, out=w1)

    # locate each token's own (d, z_old) entry inside its row segment;
    # columns are sorted within rows, so global keys are sorted.
    keys = flat_pos  # flat_pos is dead past this point; reuse its buffer
    np.multiply(seg_ids, idx_t.type(num_topics), out=keys)
    np.add(keys, gcols, out=keys)
    targets_z = ws.take("targets_z", n, idx_t)
    np.multiply(ws.arange(n), num_topics, out=targets_z, casting="same_kind")
    np.add(targets_z, z_old, out=targets_z, casting="same_kind")
    pos_z = np.searchsorted(keys, targets_z)
    if pos_z.max(initial=-1) >= keys.shape[0] or not np.array_equal(
        keys[pos_z], targets_z
    ):
        raise AssertionError(
            "token's current topic missing from its theta row — theta is "
            "out of sync with the topic assignments"
        )
    gv_z = ws.take("gvals_at_z", n, theta.data.dtype)
    np.take(gvals, pos_z, out=gv_z)
    adj = ws.take("w1_adj", n)
    np.subtract(gv_z, 1.0, out=adj, casting="same_kind")
    np.multiply(adj, p_z_excl, out=adj)
    w1[pos_z] = adj

    # One cumulative sum serves both the segment totals S and the
    # bucket-1 prefix-sum search below (the per-warp tree, built once).
    gcs = ws.take("gcs", total_nnz + 1)
    gcs[0] = 0.0
    np.cumsum(w1, out=gcs[1:])
    s = ws.take("s", n)
    base = ws.take("s_base", n)
    np.take(gcs, seg_offsets[1:], out=s)
    np.take(gcs, seg_offsets[:-1], out=base)
    np.subtract(s, base, out=s)
    np.maximum(s, 0.0, out=s)  # guard cancellation noise

    # ---- compute Q (shared P with O(1) exclusion fix) --------------------
    pw_tok = ws.take("pw_tok", n)
    np.take(p_w, wcol, out=pw_tok)
    w2 = ws.take("w2", n)
    np.subtract(pw_tok, p_star_z, out=w2)
    np.add(w2, p_z_excl, out=w2)
    q = ws.take("q", n)
    np.multiply(w2, alpha, out=q)

    # ---- bucket choice: u < S / (S + Q)  (Algorithm 2 line 6) ------------
    u_sel = _fill_random(rng, ws.take("u_sel", n))
    tmp_n = ws.take("tmp_n", n)
    np.add(s, q, out=tmp_n)
    np.multiply(u_sel, tmp_n, out=tmp_n)
    take_p1 = ws.take("take_p1", n, _BOOL)
    np.less(tmp_n, s, out=take_p1)

    # ---- draw from p1: prefix-sum search in the private (per-warp) tree --
    t1 = _fill_random(rng, ws.take("t1", n))
    np.multiply(t1, s, out=t1)
    np.add(base, t1, out=t1)
    pos1 = np.searchsorted(gcs[1:], t1, side="right")
    clip_hi = ws.take("clip_hi", n, _I64)
    np.subtract(seg_offsets[1:], 1, out=clip_hi)
    np.clip(pos1, seg_offsets[:-1], clip_hi, out=pos1)
    z_p1 = ws.take("z_p1", n, theta.indices.dtype)
    np.take(gcols, pos1, out=z_p1)

    # ---- draw from p2: shifted-CDF search in the shared tree -------------
    # The exclusion changes one atom (z_old: p_star_z -> p_z_excl), which
    # shifts the CDF by delta for all k >= z_old.  Split the target into
    # three cases instead of rebuilding the shared tree per token.
    t2 = _fill_random(rng, ws.take("t2", n))
    np.multiply(t2, w2, out=t2)
    cbz_idx = tokflat  # tokflat is dead past this point; reuse it
    np.multiply(z_old, wp, out=cbz_idx)
    np.add(cbz_idx, wcol, out=cbz_idx)
    cbz = ws.take("cdf_before_z", n)
    np.take(cdf_sub.reshape(-1), cbz_idx, out=cbz)
    np.subtract(cbz, p_star_z, out=cbz)
    case_a = ws.take("case_a", n, _BOOL)
    np.less(t2, cbz, out=case_a)
    np.add(cbz, p_z_excl, out=tmp_n)
    case_b = ws.take("case_b", n, _BOOL)
    np.less(t2, tmp_n, out=case_b)
    not_a = ws.take("not_a", n, _BOOL)
    np.logical_not(case_a, out=not_a)
    np.logical_and(case_b, not_a, out=case_b)
    target = ws.take("p2_target", n)
    np.subtract(t2, p_z_excl, out=target)
    np.add(target, p_star_z, out=target)
    np.copyto(target, t2, where=case_a)
    # guard: keep targets strictly inside (0, P) for the normalised search
    np.nextafter(pw_tok, 0.0, out=tmp_n)
    np.minimum(target, tmp_n, out=target)
    np.maximum(target, 0.0, out=target)
    np.divide(target, pw_tok, out=target)
    np.add(target, wcol, out=target, casting="same_kind")
    pos2 = np.searchsorted(flat_cdf, target, side="right")
    base2 = ws.take("p2_base", n, _I64)
    np.multiply(wcol, num_topics, out=base2)
    np.subtract(pos2, base2, out=pos2)
    np.clip(pos2, 0, num_topics - 1, out=pos2)
    np.copyto(pos2, z_old, where=case_b)

    z_new = np.where(take_p1, z_p1, pos2)  # fresh: this is the output

    stats = SamplingStats(
        num_tokens=n,
        sum_kd=int(lens.sum()),
        sum_kd_p1=int(lens[take_p1].sum()),
        num_p1_draws=int(take_p1.sum()),
        num_p2_draws=int(n - take_p1.sum()),
        num_blocks=chunk.block_plan.num_blocks,
        num_topics=num_topics,
        tree_depth=tree_depth_for(num_topics),
    )
    return SampleResult(new_topics=z_new.astype(topics.dtype), stats=stats)


def conditional_distribution(
    doc_theta_row: np.ndarray,
    phi_col: np.ndarray,
    topic_totals: np.ndarray,
    z_current: int,
    alpha: float,
    beta: float,
    num_words: int,
) -> np.ndarray:
    """Exact CGS conditional p(k) for one token (Eq. 1), normalised.

    Dense reference used by statistical tests to validate the vectorised
    sampler: exclude the token's own count, then
    ``p(k) ~ (theta[d,k] + alpha) * (phi[k,v] + beta) / (totals[k] + beta*V)``.
    """
    theta = doc_theta_row.astype(np.float64).copy()
    phi_v = phi_col.astype(np.float64).copy()
    totals = topic_totals.astype(np.float64).copy()
    if theta[z_current] < 1 or phi_v[z_current] < 1 or totals[z_current] < 1:
        raise ValueError("current topic not represented in the counts")
    theta[z_current] -= 1.0
    phi_v[z_current] -= 1.0
    totals[z_current] -= 1.0
    p = (theta + alpha) * (phi_v + beta) / (totals + beta * num_words)
    total = p.sum()
    if total <= 0:
        raise ValueError("degenerate conditional distribution")
    return p / total
