"""The CuLDA_CGS sampling kernel (Algorithm 2, Sections 6.1.1-6.1.3).

One chunk pass reassigns a topic to every token of the chunk against the
chunk-start model snapshot, with the token's **own** current assignment
excluded from the counts (proper CGS exclusion).  The decomposition of
Eq. 6/8 is used throughout:

    p*(k)  = (phi[k,v] + beta) / (topic_totals[k] + beta*V)
    p1(k)  = theta[d,k] * p*(k)          (sparse: Kd non-zeros)
    p2(k)  = alpha * p*(k)               (dense: K entries, shared per word)
    S = sum_k p1(k),  Q = sum_k p2(k)

A draw takes bucket p1 with probability ``S / (S + Q)``; inside a bucket
the draw is a prefix-sum search (the Figure 5 index tree).

Mapping to the paper's GPU execution
------------------------------------
The paper runs one warp per token-sampler, 32 samplers per thread block,
all samplers of a block on tokens of the *same word* so they share the
p*(k)/p2 index tree in shared memory.  The SIMD expression of that design
in NumPy is *word-batched vectorization*: every per-word quantity (p*,
its prefix sums) is computed once per word, and every per-token quantity
is a vector op over all tokens at once.  All searches are
``searchsorted`` over prefix sums — bit-identical to the index-tree
descent (see :mod:`repro.core.tree` and its equivalence tests).

Exclusion adjustment
--------------------
Excluding token ``j``'s own count changes the snapshot quantities in O(1)
places: ``phi[z_j, v] -= 1``, ``topic_totals[z_j] -= 1`` and
``theta[d_j, z_j] -= 1``.  Each affects only the ``z_j`` entry of p*(k) /
p1(k), so S, Q and both prefix-sum searches are corrected with
constant-time per-token adjustments (a shifted-CDF three-case search for
p2, a single-entry rewrite for p1) — never a per-token rebuild of the
shared structures.  This is exactly why the block-shared tree is sound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.encoding import DeviceChunk
from repro.core.costs import SamplingStats, tree_depth_for
from repro.core.sparse import CsrCounts, gather_rows


@dataclass(frozen=True)
class SampleResult:
    """Output of one chunk sampling pass."""

    new_topics: np.ndarray  # same dtype/order as the input topics
    stats: SamplingStats


def _segment_sums(values: np.ndarray, seg_offsets: np.ndarray) -> np.ndarray:
    """Sum of each ``[seg_offsets[i], seg_offsets[i+1])`` slice of values."""
    csum = np.zeros(values.shape[0] + 1, dtype=np.float64)
    np.cumsum(values, out=csum[1:])
    return csum[seg_offsets[1:]] - csum[seg_offsets[:-1]]


def sample_chunk(
    chunk: DeviceChunk,
    topics: np.ndarray,
    theta: CsrCounts,
    phi: np.ndarray,
    topic_totals: np.ndarray,
    alpha: float,
    beta: float,
    rng: np.random.Generator,
) -> SampleResult:
    """Sample a new topic for every token of ``chunk``.

    Parameters
    ----------
    chunk:
        Word-first encoded chunk (see :mod:`repro.corpus.encoding`).
    topics:
        Current topic per token, aligned with the chunk's token order.
        The input array is not modified.
    theta:
        The chunk's document-topic CSR, consistent with ``topics``.
    phi, topic_totals:
        The device's model replica (consistent with the union of all
        chunk assignments it has seen — the chunk-start snapshot).
    alpha, beta:
        Hyper-parameters of Eq. 1.
    rng:
        Per-(iteration, chunk) generator from :class:`~repro.core.rng.RngPool`.

    Returns
    -------
    SampleResult
        New topics plus the measured statistics that drive cost accounting.
    """
    n = chunk.num_tokens
    num_topics, num_words = phi.shape
    if topics.shape[0] != n:
        raise ValueError("topics length must equal chunk token count")
    if theta.num_rows != chunk.num_local_docs or theta.num_cols != num_topics:
        raise ValueError("theta shape inconsistent with chunk/model")
    if topic_totals.shape[0] != num_topics:
        raise ValueError("topic_totals length must be K")
    if n == 0:
        return SampleResult(
            new_topics=topics.copy(),
            stats=SamplingStats(0, 0, 0, 0, 0, 0, num_topics, tree_depth_for(num_topics)),
        )

    z_old = topics.astype(np.int64)
    words = chunk.token_words.astype(np.int64)
    docs = chunk.token_docs.astype(np.int64)
    beta_v = beta * num_words
    denom = topic_totals.astype(np.float64) + beta_v  # K

    # ---- per-word shared structures (the block-shared p* tree) ----------
    spans = np.diff(chunk.word_offsets)
    present = np.nonzero(spans)[0]
    wp = present.shape[0]
    counts_present = spans[present]
    # p_sub[k, c] = p*(k) for present word c; one column per word.
    p_sub = (phi[:, present].astype(np.float64) + beta) / denom[:, None]
    p_w = p_sub.sum(axis=0)  # per-word total P = sum_k p*(k)
    cdf_sub = np.cumsum(p_sub, axis=0)  # K x Wp prefix sums (index tree)
    # Column-major flattened, per-column normalised CDF for one-shot
    # vectorised per-column searches (the SIMD index-tree descent).
    flat_cdf = (cdf_sub / p_w[None, :]).T.ravel()
    flat_cdf += np.repeat(np.arange(wp, dtype=np.float64), num_topics)

    # token -> present-word column index (tokens are word-first sorted).
    wcol = np.repeat(np.arange(wp, dtype=np.int64), counts_present)

    # ---- per-token exclusion scalars ------------------------------------
    phi_zv = phi[z_old, words].astype(np.float64)
    tot_z = topic_totals[z_old].astype(np.float64)
    p_star_z = (phi_zv + beta) / (tot_z + beta_v)
    p_z_excl = (phi_zv - 1.0 + beta) / (tot_z - 1.0 + beta_v)

    # ---- compute S: walk each token's theta row (sum Kd work) -----------
    seg_offsets, gcols_raw, gvals, lens = gather_rows(theta, docs)
    total_nnz = int(seg_offsets[-1])
    # Token/topic products fit 32-bit arithmetic at any realistic scale;
    # fall back to 64-bit only when n*K would overflow.
    wide = (n * num_topics >= 2**31) or (num_topics * wp >= 2**31)
    idx_t = np.int64 if wide else np.int32
    gcols = gcols_raw.astype(idx_t, copy=False)
    gvals_f = gvals.astype(np.float64)
    wcol_seg = np.repeat(wcol.astype(idx_t, copy=False), lens)
    # flat gather from p_sub: row-major (k, c) -> k*Wp + c
    w1 = gvals_f * p_sub.ravel()[gcols * idx_t(wp) + wcol_seg]

    # locate each token's own (d, z_old) entry inside its row segment;
    # columns are sorted within rows, so global keys are sorted.
    seg_ids = np.repeat(np.arange(n, dtype=idx_t), lens)
    keys = seg_ids * num_topics + gcols
    targets_z = np.arange(n, dtype=idx_t) * num_topics + z_old.astype(idx_t)
    pos_z = np.searchsorted(keys, targets_z)
    if pos_z.max(initial=-1) >= keys.shape[0] or not np.array_equal(
        keys[pos_z], targets_z
    ):
        raise AssertionError(
            "token's current topic missing from its theta row — theta is "
            "out of sync with the topic assignments"
        )
    w1_adj = w1  # modified in place; w1 is not reused unadjusted
    w1_adj[pos_z] = (gvals_f[pos_z] - 1.0) * p_z_excl

    # One cumulative sum serves both the segment totals S and the
    # bucket-1 prefix-sum search below (the per-warp tree, built once).
    gcs = np.zeros(total_nnz + 1, dtype=np.float64)
    np.cumsum(w1_adj, out=gcs[1:])
    s = gcs[seg_offsets[1:]] - gcs[seg_offsets[:-1]]
    np.maximum(s, 0.0, out=s)  # guard cancellation noise

    # ---- compute Q (shared P with O(1) exclusion fix) --------------------
    q = alpha * (p_w[wcol] - p_star_z + p_z_excl)

    # ---- bucket choice: u < S / (S + Q)  (Algorithm 2 line 6) ------------
    u_sel = rng.random(n)
    take_p1 = u_sel * (s + q) < s

    # ---- draw from p1: prefix-sum search in the private (per-warp) tree --
    t1 = rng.random(n) * s
    base = gcs[seg_offsets[:-1]]
    pos1 = np.searchsorted(gcs[1:], base + t1, side="right")
    pos1 = np.clip(pos1, seg_offsets[:-1], seg_offsets[1:] - 1)
    z_p1 = gcols[pos1]

    # ---- draw from p2: shifted-CDF search in the shared tree -------------
    # The exclusion changes one atom (z_old: p_star_z -> p_z_excl), which
    # shifts the CDF by delta for all k >= z_old.  Split the target into
    # three cases instead of rebuilding the shared tree per token.
    w2 = p_w[wcol] - p_star_z + p_z_excl
    t2 = rng.random(n) * w2
    cdf_before_z = cdf_sub[z_old, wcol] - p_star_z
    case_a = t2 < cdf_before_z
    case_b = (~case_a) & (t2 < cdf_before_z + p_z_excl)
    target = np.where(case_a, t2, t2 - p_z_excl + p_star_z)
    # guard: keep targets strictly inside (0, P) for the normalised search
    np.minimum(target, np.nextafter(p_w[wcol], 0.0), out=target)
    np.maximum(target, 0.0, out=target)
    pos2 = np.searchsorted(
        flat_cdf, wcol + target / p_w[wcol], side="right"
    ) - wcol * num_topics
    z_p2 = np.clip(pos2, 0, num_topics - 1)
    z_p2 = np.where(case_b, z_old, z_p2)

    z_new = np.where(take_p1, z_p1, z_p2).astype(np.int64)

    stats = SamplingStats(
        num_tokens=n,
        sum_kd=int(lens.sum()),
        sum_kd_p1=int(lens[take_p1].sum()),
        num_p1_draws=int(take_p1.sum()),
        num_p2_draws=int(n - take_p1.sum()),
        num_blocks=chunk.block_plan.num_blocks,
        num_topics=num_topics,
        tree_depth=tree_depth_for(num_topics),
    )
    return SampleResult(new_topics=z_new.astype(topics.dtype), stats=stats)


def conditional_distribution(
    doc_theta_row: np.ndarray,
    phi_col: np.ndarray,
    topic_totals: np.ndarray,
    z_current: int,
    alpha: float,
    beta: float,
    num_words: int,
) -> np.ndarray:
    """Exact CGS conditional p(k) for one token (Eq. 1), normalised.

    Dense reference used by statistical tests to validate the vectorised
    sampler: exclude the token's own count, then
    ``p(k) ~ (theta[d,k] + alpha) * (phi[k,v] + beta) / (totals[k] + beta*V)``.
    """
    theta = doc_theta_row.astype(np.float64).copy()
    phi_v = phi_col.astype(np.float64).copy()
    totals = topic_totals.astype(np.float64).copy()
    if theta[z_current] < 1 or phi_v[z_current] < 1 or totals[z_current] < 1:
        raise ValueError("current topic not represented in the counts")
    theta[z_current] -= 1.0
    phi_v[z_current] -= 1.0
    totals[z_current] -= 1.0
    p = (theta + alpha) * (phi_v + beta) / (totals + beta * num_words)
    total = p.sum()
    if total <= 0:
        raise ValueError("degenerate conditional distribution")
    return p / total
