"""CSR utilities for the sparse document-topic matrix theta.

The paper stores theta in CSR with 16-bit column indices (Section 6.1.3)
and rebuilds each row with a dense-scatter + prefix-sum compaction after
sampling (Section 6.2).  This module provides an array-of-arrays CSR type
tuned for the access patterns the sampler needs:

- ``gather_rows``: variable-length row gather (the per-token theta walk);
- ``row_lookup``: batched ``theta[d, k]`` point lookups via the flattened
  searchsorted trick (SIMD equivalent of a per-warp binary search);
- ``from_assignments``: the dense-scatter + compaction rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CsrCounts:
    """A CSR matrix of non-negative integer counts with sorted columns.

    ``indices`` may be 16-bit (paper's compression) or 32-bit; ``data``
    holds counts.  Rows with no non-zeros are legal (empty documents).
    """

    indptr: np.ndarray  # int64[rows+1]
    indices: np.ndarray  # uint16/int32[nnz], sorted within each row
    data: np.ndarray  # int32[nnz]
    num_cols: int

    def __post_init__(self) -> None:
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indptr[-1] != self.indices.shape[0] or self.indices.shape[0] != self.data.shape[0]:
            raise ValueError("indptr/indices/data lengths inconsistent")
        if self.num_cols <= 0:
            raise ValueError("num_cols must be positive")

    @property
    def num_rows(self) -> int:
        return int(self.indptr.shape[0] - 1)

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    def row_lengths(self) -> np.ndarray:
        """``Kd`` per row — the quantity that drives sampling cost (Table 1)."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        """Dense ``int64[rows, cols]`` (tests/diagnostics only)."""
        out = np.zeros((self.num_rows, self.num_cols), dtype=np.int64)
        rows = np.repeat(np.arange(self.num_rows), self.row_lengths())
        out[rows, self.indices.astype(np.int64)] = self.data
        return out

    def validate(self) -> None:
        """Check sorted columns and positive counts (test helper)."""
        lens = self.row_lengths()
        if self.nnz:
            if self.indices.astype(np.int64).max() >= self.num_cols:
                raise ValueError("column index out of range")
            if self.data.min() <= 0:
                raise ValueError("stored counts must be positive")
        # Columns strictly increasing within each row: diff >= 1 except at
        # row starts.
        if self.nnz > 1:
            idx = self.indices.astype(np.int64)
            d = np.diff(idx)
            starts = (self.indptr[1:-1])[lens[:-1] > 0]
            mask = np.ones(self.nnz - 1, dtype=bool)
            mask[starts[(starts > 0) & (starts < self.nnz)] - 1] = False
            if np.any(d[mask] <= 0):
                raise ValueError("columns not strictly increasing within a row")


def index_dtype(num_cols: int, compress: bool) -> np.dtype:
    """16-bit CSR column indices when K < 2**16 (Section 6.1.3)."""
    if compress and num_cols <= np.iinfo(np.uint16).max + 1:
        return np.dtype(np.uint16)
    return np.dtype(np.int32)


def from_assignments(
    row_of_item: np.ndarray,
    col_of_item: np.ndarray,
    num_rows: int,
    num_cols: int,
    compress: bool = True,
) -> CsrCounts:
    """Build count-CSR from item-level (row, col) assignments.

    This is the functional equivalent of the paper's update-theta kernel:
    scatter each document's topics into a dense histogram, then compact
    the non-zeros with a prefix sum (Section 6.2).  The vectorised form
    histograms all items at once via flattened keys.
    """
    if row_of_item.shape != col_of_item.shape:
        raise ValueError("row/col arrays must have the same shape")
    if num_rows <= 0 or num_cols <= 0:
        raise ValueError("matrix dims must be positive")
    rows = np.asarray(row_of_item, dtype=np.int64)
    cols = np.asarray(col_of_item, dtype=np.int64)
    if rows.size:
        if rows.min() < 0 or rows.max() >= num_rows:
            raise ValueError("row index out of range")
        if cols.min() < 0 or cols.max() >= num_cols:
            raise ValueError("col index out of range")
    keys = rows * num_cols + cols
    uniq, counts = np.unique(keys, return_counts=True)
    out_rows = uniq // num_cols
    out_cols = uniq % num_cols
    row_nnz = np.bincount(out_rows, minlength=num_rows).astype(np.int64)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=indptr[1:])
    return CsrCounts(
        indptr=indptr,
        indices=out_cols.astype(index_dtype(num_cols, compress)),
        data=counts.astype(np.int32),
        num_cols=num_cols,
    )


def gather_rows(
    csr: CsrCounts, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the given rows' (cols, vals) segments.

    Returns ``(seg_offsets, cols, vals, seg_lengths)`` where row ``j`` of
    the request occupies ``[seg_offsets[j], seg_offsets[j+1])`` of the
    flat arrays.  This is the vectorised form of each warp walking its
    document's theta row (compute-S step of Algorithm 2); total work is
    ``sum(Kd)`` — exactly the cost Table 1 charges.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = csr.indptr[rows]
    lens = csr.indptr[rows + 1] - starts
    seg_offsets = np.zeros(rows.shape[0] + 1, dtype=np.int64)
    np.cumsum(lens, out=seg_offsets[1:])
    total = int(seg_offsets[-1])
    if total == 0:
        empty_i = np.zeros(0, dtype=csr.indices.dtype)
        empty_v = np.zeros(0, dtype=csr.data.dtype)
        return seg_offsets, empty_i, empty_v, lens
    # positions: for each output slot, its index into csr arrays.
    pos = np.arange(total, dtype=np.int64)
    pos -= np.repeat(seg_offsets[:-1], lens)
    pos += np.repeat(starts, lens)
    return seg_offsets, csr.indices[pos], csr.data[pos], lens


def row_lookup(csr: CsrCounts, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Batched ``csr[rows[j], cols[j]]`` point lookups (0 when absent).

    Columns are sorted within rows, so ``row * num_cols + col`` keys are
    globally sorted over the concatenation of the requested rows — one
    ``searchsorted`` resolves every lookup (the SIMD analogue of a warp's
    binary search in its row).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise ValueError("rows/cols must have the same shape")
    seg_offsets, gcols, gvals, lens = gather_rows(csr, rows)
    if gcols.size == 0:
        return np.zeros(rows.shape[0], dtype=np.int64)
    seg_ids = np.repeat(np.arange(rows.shape[0], dtype=np.int64), lens)
    keys = seg_ids * csr.num_cols + gcols.astype(np.int64)
    targets = np.arange(rows.shape[0], dtype=np.int64) * csr.num_cols + cols
    pos = np.searchsorted(keys, targets)
    out = np.zeros(rows.shape[0], dtype=np.int64)
    hit = (pos < keys.shape[0])
    hit_pos = pos[hit]
    exact = keys[hit_pos] == targets[hit]
    idx = np.nonzero(hit)[0][exact]
    out[idx] = gvals[hit_pos[exact]]
    return out
