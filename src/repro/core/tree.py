"""Tree-based sampling: the prefix-sum index tree of Figure 5.

The paper turns a multinomial draw over ``p[0..n)`` into a search: compute
prefix sums, draw ``u ~ U(0, total)`` and find the smallest ``k`` with
``prefixSum[k] > u``.  A 32-way index tree over the prefix sums keeps the
search's working set small enough for shared memory ("the index tree is
small enough to fit into shared memory ... only the two elements of p are
in the memory"), and a warp inspects the 32 children of one node in a
single SIMD step.

:class:`IndexTree` is a faithful implementation: bottom-up 32-wide sum
levels and a top-down descent.  ``batch_search`` performs the descent for
many draws at once — each level resolves with one ``searchsorted`` over
the level's global cumulative sums, which is bit-identical to every warp
scanning its node's children in parallel.
"""

from __future__ import annotations

import numpy as np

#: Paper: "we use 32-way tree in the tree-based sampling" (warp width).
DEFAULT_FANOUT = 32


class IndexTree:
    """A ``fanout``-way sum tree over non-negative weights.

    Parameters
    ----------
    weights:
        1-D non-negative array; zeros are allowed (never sampled).
    fanout:
        Tree arity; 32 matches one warp inspecting one node per step.
    """

    __slots__ = ("fanout", "levels", "cumsums", "_n")

    def __init__(self, weights: np.ndarray, fanout: int = DEFAULT_FANOUT):
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite and non-negative")
        self.fanout = fanout
        self._n = w.size
        self.levels: list[np.ndarray] = [w.copy()]
        while self.levels[-1].size > 1:
            cur = self.levels[-1]
            pad = (-cur.size) % fanout
            if pad:
                cur = np.concatenate([cur, np.zeros(pad)])
            self.levels.append(cur.reshape(-1, fanout).sum(axis=1))
        # Global cumulative sums per level, used by the SIMD descent.
        self.cumsums = [np.cumsum(lvl) for lvl in self.levels]

    @property
    def size(self) -> int:
        """Number of leaves (the length of the weight vector)."""
        return self._n

    @property
    def total(self) -> float:
        """Sum of all weights (the root node)."""
        return float(self.levels[-1][0])

    @property
    def num_nodes(self) -> int:
        """Total node count across all levels (shared-memory footprint)."""
        return sum(lvl.size for lvl in self.levels)

    def nbytes(self, float_bytes: int = 4) -> int:
        """Device footprint assuming ``float_bytes`` per node."""
        return self.num_nodes * float_bytes

    @property
    def depth(self) -> int:
        """Number of descent steps from root to leaf."""
        return len(self.levels) - 1

    def search(self, target: float) -> int:
        """Scalar search: smallest leaf ``k`` with ``prefix[k] > target``.

        ``target`` must lie in ``[0, total)``.
        """
        out = self.batch_search(np.asarray([target], dtype=np.float64))
        return int(out[0])

    def batch_search(self, targets: np.ndarray) -> np.ndarray:
        """Vectorised descent for many targets at once.

        Each level is resolved with a single ``searchsorted`` on the
        level's global cumulative sums: for a query sitting at node ``j``
        the children occupy a contiguous span whose in-span cumulative
        sums are ``cumsum - base``; finding the crossing child is a search
        for ``base + residual`` in the global cumsum.  Exactly the warp
        -parallel 32-way scan of the paper, for all queries at once.
        """
        t = np.asarray(targets, dtype=np.float64)
        if t.ndim != 1:
            raise ValueError("targets must be 1-D")
        if self.total <= 0:
            raise ValueError("cannot sample from an all-zero tree")
        if t.size and (t.min() < 0 or t.max() >= self.total):
            raise ValueError(
                f"targets must lie in [0, {self.total}); got "
                f"[{t.min()}, {t.max()}]"
            )
        node = np.zeros(t.shape[0], dtype=np.int64)
        resid = t.copy()
        for lvl in range(len(self.levels) - 2, -1, -1):
            ccs = self.cumsums[lvl]
            lo = node * self.fanout
            hi = np.minimum(lo + self.fanout, ccs.shape[0])
            base = np.where(lo > 0, ccs[np.maximum(lo - 1, 0)], 0.0)
            pos = np.searchsorted(ccs, base + resid, side="right")
            # Floating-point guard: stay inside the node's child span.
            pos = np.clip(pos, lo, hi - 1)
            prev = np.where(pos > 0, ccs[np.maximum(pos - 1, 0)], 0.0)
            resid = resid - (prev - base)
            # Guard tiny negative residuals from cancellation.
            np.maximum(resid, 0.0, out=resid)
            node = pos
        return node

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` leaves with probability proportional to weight."""
        if size < 0:
            raise ValueError("size must be non-negative")
        u = rng.random(size) * self.total
        return self.batch_search(u)


def linear_search_reference(weights: np.ndarray, target: float) -> int:
    """O(n) reference: smallest k with ``cumsum(weights)[k] > target``.

    Used by property tests to prove :meth:`IndexTree.batch_search`
    equivalence.
    """
    w = np.asarray(weights, dtype=np.float64)
    acc = 0.0
    for k in range(w.size):
        acc += w[k]
        if target < acc:
            return k
    raise ValueError("target beyond total weight")


def cdf_sample(
    weights: np.ndarray, u: np.ndarray
) -> np.ndarray:
    """Flat prefix-sum sampling (no tree): ``searchsorted(cumsum, u*total)``.

    This is the memory-hungry variant the index tree replaces; kept as an
    oracle and for the tree-vs-flat ablation.
    """
    w = np.asarray(weights, dtype=np.float64)
    cdf = np.cumsum(w)
    total = cdf[-1]
    if total <= 0:
        raise ValueError("cannot sample from an all-zero weight vector")
    idx = np.searchsorted(cdf, np.asarray(u) * total, side="right")
    return np.clip(idx, 0, w.size - 1)
