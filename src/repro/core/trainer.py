"""CuLdaTrainer: the end-to-end training loop (Figure 3).

Ties together the corpus substrate, the simulated devices, the sampling
and update kernels, the Algorithm 1 schedules and the Figure 4 phi
synchronization.  Produces per-iteration records with the two metrics the
paper reports: **tokens/sec** (Eq. 2, against *simulated* time) and
**log-likelihood per token** (Figure 8).

Typical use::

    from repro import CuLdaTrainer, TrainerConfig
    from repro.corpus.synthetic import small_spec, generate_synthetic_corpus
    from repro.gpusim import VOLTA_PLATFORM

    corpus = generate_synthetic_corpus(small_spec(), seed=0)
    trainer = CuLdaTrainer(corpus, TrainerConfig(num_topics=64),
                           platform=VOLTA_PLATFORM)
    history = trainer.train(num_iterations=20)
    print(history[-1].tokens_per_sec, history[-1].log_likelihood_per_token)
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.faults import FaultInjected
from repro.corpus.document import Corpus
from repro.corpus.encoding import topic_dtype_for
from repro.corpus.partition import assign_round_robin, partition_by_tokens
from repro.core.config import TrainerConfig
from repro.core.costs import phi_replica_bytes, theta_replica_bytes
from repro.core.likelihood import (
    ensure_finite,
    likelihood_due,
    log_likelihood_from_terms,
    log_likelihood_per_token,
)
from repro.core.model import LdaState
from repro.core.rng import RngPool
from repro.core.scheduler import (
    DeviceState,
    replay_parallel_accounting,
    run_iteration,
)
from repro.core.sync import simulate_phi_sync, synchronize, synchronize_prereduced
from repro.core.updates import verify_phi_consistency
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.platform import Platform, VOLTA_PLATFORM
from repro.gpusim.spec import DeviceSpec
from repro.gpusim.stream import barrier
from repro.perf import Workspace


@dataclass(frozen=True)
class IterationRecord:
    """Metrics of one completed iteration."""

    iteration: int
    sim_seconds: float  # simulated duration of this iteration
    cumulative_seconds: float  # simulated time since training start
    tokens_per_sec: float  # Eq. 2 for this iteration
    log_likelihood_per_token: float | None
    mean_kd: float  # average theta-row density (sparsity tracker)
    p1_fraction: float  # share of draws taking the sparse bucket
    changed_fraction: float  # share of tokens whose topic changed


class CuLdaTrainer:
    """Multi-GPU (simulated) CuLDA_CGS trainer.

    Parameters
    ----------
    corpus:
        The corpus to train on.
    config:
        Topics, hyper-parameters, G, M and the Section 6 optimization
        switches.
    platform:
        A Table 2 platform; its GPU spec is instantiated ``config.num_gpus``
        times.  Pass ``device_spec`` instead to use a bare GPU spec.
    validate_every:
        Run the (expensive) invariant checks every N iterations; 0 off.
    """

    DESCRIPTION = "CuLDA_CGS: multi-GPU sparsity-aware CGS (the paper's system)"

    def __init__(
        self,
        corpus: Corpus,
        config: TrainerConfig,
        platform: Platform | None = None,
        device_spec: DeviceSpec | None = None,
        validate_every: int = 0,
    ):
        if platform is not None and device_spec is not None:
            raise ValueError("pass either platform or device_spec, not both")
        if platform is None and device_spec is None:
            platform = VOLTA_PLATFORM
        spec = device_spec if device_spec is not None else platform.gpu
        if platform is not None and config.num_gpus > platform.num_gpus:
            raise ValueError(
                f"platform {platform.name} has {platform.num_gpus} GPUs, "
                f"config requests {config.num_gpus}"
            )
        self.corpus = corpus
        self.config = config
        self.spec = spec
        self.pool = RngPool(config.seed)
        self.validate_every = validate_every

        chunk_specs = partition_by_tokens(corpus, config.num_chunks)
        self.state = LdaState.initialize(corpus, config, chunk_specs)
        per_gpu = assign_round_robin(chunk_specs, config.num_gpus)

        self.devices: list[DeviceState] = []
        for g in range(config.num_gpus):
            gpu = SimulatedGPU(g, spec)
            dev = DeviceState(
                gpu=gpu,
                phi=self.state.phi.copy(),
                totals=self.state.topic_totals.copy(),
                chunk_ids=[c.chunk_id for c in per_gpu[g]],
                workspace=Workspace(config.compute_dtype),
            )
            self.devices.append(dev)
        self._allocate_device_memory()
        self._initial_transfers()
        self.history: list[IterationRecord] = []
        #: per-iteration ChunkRecords, consumed by repro.analysis.replay
        self.outcomes: list = []
        self._iterations_done = 0
        #: lazy ProcessEngine for config.execution == "process"
        self._engine = None
        #: crash-recovery / merge-retry events; shared with the engine so
        #: the trail survives engine rebuilds (see :attr:`recovery_events`).
        self._recovery_log: list[dict] = []

    # -- setup ----------------------------------------------------------------

    def _allocate_device_memory(self) -> None:
        """Register phi replicas + chunk/staging buffers; enforce capacity.

        M=1: every chunk resident.  M>1: two staging slots sized for the
        largest chunk (the Section 5.1 requirement for overlap), or one
        slot when overlap is disabled.
        """
        cfg = self.config
        phi_bytes = phi_replica_bytes(cfg.num_topics, self.corpus.num_words, cfg.compress)
        tdtype = topic_dtype_for(cfg.num_topics, cfg.compress)
        for dev in self.devices:
            dev.gpu.alloc("phi_replica", phi_bytes)
            if cfg.chunks_per_gpu == 1:
                for cid in dev.chunk_ids:
                    cs = self.state.chunks[cid]
                    nbytes = cs.chunk.nbytes(tdtype) + theta_replica_bytes(
                        cs.chunk.num_tokens, cs.chunk.num_local_docs, cfg.compress
                    )
                    dev.gpu.alloc(f"chunk[{cid}]", nbytes)
            else:
                biggest = max(
                    self.state.chunks[cid].chunk.nbytes(tdtype)
                    + theta_replica_bytes(
                        self.state.chunks[cid].chunk.num_tokens,
                        self.state.chunks[cid].chunk.num_local_docs,
                        cfg.compress,
                    )
                    for cid in dev.chunk_ids
                )
                slots = 2 if cfg.overlap_transfers else 1
                for s in range(slots):
                    dev.gpu.alloc(f"staging[{s}]", biggest)

    def _initial_transfers(self) -> None:
        """Algorithm 1 lines 7-9: ship resident data to the devices."""
        cfg = self.config
        phi_bytes = phi_replica_bytes(cfg.num_topics, self.corpus.num_words, cfg.compress)
        tdtype = topic_dtype_for(cfg.num_topics, cfg.compress)
        for dev in self.devices:
            dev.gpu.h2d("transfer", phi_bytes)
            if cfg.chunks_per_gpu == 1:
                for cid in dev.chunk_ids:
                    dev.gpu.h2d("transfer", self.state.chunks[cid].chunk.nbytes(tdtype))
        barrier([d.gpu.timeline for d in self.devices])

    # -- parallel execution ---------------------------------------------------

    def _ensure_engine(self):
        """Build/start the process engine and point the device replicas at
        its shared-memory views (values preserved)."""
        if self._engine is None:
            from repro.parallel import ProcessEngine

            self._engine = ProcessEngine(
                chunks={
                    cs.chunk.spec.chunk_id: cs for cs in self.state.chunks
                },
                groups=[list(dev.chunk_ids) for dev in self.devices],
                replicas=[(dev.phi, dev.totals) for dev in self.devices],
                num_topics=self.config.num_topics,
                alpha=self.config.effective_alpha,
                beta=self.config.effective_beta,
                compress=self.config.compress,
                compute_dtype=self.config.compute_dtype,
                seed=self.config.seed,
                num_workers=self.config.num_workers,
                sync_mode=self.config.sync_mode,
                worker_affinity=self.config.worker_affinity,
                recovery_retries=self.config.recovery_retries,
                recovery_backoff=self.config.recovery_backoff,
                recovery_log=self._recovery_log,
            )
            self._engine.start()
            for g, dev in enumerate(self.devices):
                dev.phi = self._engine.phi(g)
                dev.totals = self._engine.totals(g)
        return self._engine

    def close(self) -> None:
        """Shut down process-mode workers and shared memory (if any).

        The trainer stays fully usable afterwards: state is copied back
        to private arrays, and a later ``train`` in process mode builds a
        fresh engine from the current state.  No-op in serial mode.

        If an exception unwound out of an overlapped ``train`` while the
        next iteration was in flight, that iteration is drained and its
        pre-reduced deltas merged first, so the copied-back model is
        internally consistent (phi == sum of assignments) rather than a
        torn snapshot of buffers the workers were still writing.
        """
        if self._engine is not None:
            if self._engine.started:
                if self._engine.drain() is not None:
                    # Separate frame: its replica/accumulator views must
                    # be dead before engine.close() unmaps the arena.
                    self._merge_pending_sync()
                for dev in self.devices:
                    dev.phi = np.array(dev.phi)
                    dev.totals = np.array(dev.totals)
            self._engine.close()
            self._engine = None

    def _merge_pending_sync(self) -> None:
        """Fold a drained in-flight iteration into the model on close.

        The interrupted iteration's sampling is in the shared topics
        already; completing its phi merge keeps token conservation (it
        is simply the last, unrecorded iteration of the interrupted
        train).  Barrier mode has no pre-reduce accumulators — its
        updates live in the replicas, so difference them instead.
        """
        device_phis = [d.phi for d in self.devices]
        device_totals = [d.totals for d in self.devices]
        if self.config.sync_mode == "barrier":
            phi_new, totals_new = synchronize(
                self.state.phi, device_phis, device_totals
            )
        else:
            phi_new, totals_new = synchronize_prereduced(
                self.state.phi,
                self.state.topic_totals,
                self._engine.worker_accumulators(),
                device_phis,
                device_totals,
            )
        self.state.phi[...] = phi_new
        self.state.topic_totals[...] = totals_new

    def __enter__(self) -> CuLdaTrainer:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- robustness ------------------------------------------------------------

    @property
    def recovery_events(self) -> list[dict]:
        """Crash-recovery / merge-retry events recorded so far.

        One dict per incident (``iteration``, ``attempt``, ``error``,
        ``backoff_s``); empty for an undisturbed run.  The
        :class:`~repro.api.callbacks.Checkpointer` watches this to
        autosave after a recovery.
        """
        return self._recovery_log

    def _sync_with_retry(self, fn, *args, **kwargs):
        """Run a phi sync, retrying injected transient merge failures.

        ``merge_fail`` raises *before* any mutation or simulated-clock
        charge, so the retry replays the sync bit-identically.  Budget
        and backoff are the crash-recovery knobs.
        """
        attempt = 0
        while True:
            try:
                return fn(*args, **kwargs)
            except FaultInjected as exc:
                attempt += 1
                if attempt > self.config.recovery_retries:
                    raise
                backoff = self.config.recovery_backoff * (2 ** (attempt - 1))
                self._recovery_log.append(
                    {
                        "iteration": self._iterations_done,
                        "attempt": attempt,
                        "error": str(exc),
                        "backoff_s": backoff,
                    }
                )
                if backoff:
                    time.sleep(backoff)

    def resume_state(self) -> dict:
        """Progress counters a resumable checkpoint must carry."""
        return {
            "iterations_done": self._iterations_done,
            "sim_time": max(d.gpu.sync() for d in self.devices),
        }

    def restore(self, state: LdaState, run: dict | None = None) -> None:
        """Adopt checkpointed state; continue bit-identically from it.

        ``state`` must come from a checkpoint of a run with this
        trainer's configuration (same corpus, partition and seed — the
        RNG streams are keyed by ``(seed, iteration, chunk)``, so only
        the iteration counter needs restoring for the draws to line up).
        ``run`` optionally carries the v2 checkpoint's progress counters
        (``iterations_done``, ``sim_time``); without it the trainer
        resumes at iteration 0 of the given state.
        """
        if state.num_topics != self.config.num_topics:
            raise ValueError(
                f"checkpoint has {state.num_topics} topics, config "
                f"expects {self.config.num_topics}"
            )
        if len(state.chunks) != len(self.state.chunks):
            raise ValueError(
                f"checkpoint has {len(state.chunks)} chunks, this trainer "
                f"partitioned {len(self.state.chunks)} — same corpus and "
                f"num_gpus*chunks_per_gpu required"
            )
        self.close()
        self.state = state
        for dev in self.devices:
            dev.phi = state.phi.copy()
            dev.totals = state.topic_totals.copy()
        run = run or {}
        self._iterations_done = int(run.get("iterations_done", 0))
        sim_time = float(run.get("sim_time", 0.0))
        # Construction already charged alloc + initial transfers; a
        # checkpointed clock can only be at or past that point.
        for dev in self.devices:
            dev.gpu.timeline.advance_to(sim_time)
        self.history = []
        self.outcomes = []

    # -- training -------------------------------------------------------------

    def train(
        self,
        num_iterations: int,
        compute_likelihood_every: int = 1,
        callbacks=(),
    ) -> list[IterationRecord]:
        """Run ``num_iterations`` Gibbs iterations; returns their records.

        ``callbacks`` takes :class:`repro.api.callbacks.Callback`
        instances: they decide the likelihood cadence (superseding
        ``compute_likelihood_every`` when a cadence callback is present)
        and may stop training early from ``on_iteration_end``.  The
        full-featured loop (``on_train_begin``/``end`` hooks, a
        :class:`~repro.api.protocol.TrainResult`) is
        ``repro.create_trainer("culda", ...).fit(...)``.
        """
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        if compute_likelihood_every < 0:
            raise ValueError("compute_likelihood_every must be non-negative")
        callbacks = list(callbacks)
        if callbacks:
            from repro.api.callbacks import likelihood_needed
        total_tokens = self.state.num_tokens
        engine = (
            self._ensure_engine() if self.config.execution == "process" else None
        )
        sync_mode = self.config.sync_mode if engine is not None else "barrier"
        prereduced = sync_mode in ("prereduce", "overlap")
        # The overlap pipeline dispatches iteration i+1 before charging
        # and scoring iteration i; callbacks may stop training between
        # iterations, so pipelining is only engaged without them (the
        # pre-reduced merge and worker-side likelihood still apply).
        pipeline = sync_mode == "overlap" and not callbacks
        phi_bytes = phi_replica_bytes(
            self.config.num_topics, self.corpus.num_words, self.config.compress
        )

        def needs_ll(it: int) -> bool:
            if callbacks:
                return likelihood_needed(callbacks, it, compute_likelihood_every)
            return likelihood_due(it, compute_likelihood_every)

        inflight: int | None = None
        for n in range(num_iterations):
            it = self._iterations_done
            t0 = max(d.gpu.sync() for d in self.devices)
            need_ll = needs_ll(it)
            results = None
            if engine is not None:
                if inflight is None:
                    engine.dispatch_iteration(it, want_ll=need_ll)
                results = engine.collect_iteration()
                inflight = None
            validate_due = bool(
                self.validate_every and (it + 1) % self.validate_every == 0
            )
            if not prereduced:
                if engine is None:
                    outcome = run_iteration(
                        self.devices, self.state, self.config, it, self.pool
                    )
                else:
                    outcome = replay_parallel_accounting(
                        self.devices, self.state, self.config, it, results
                    )
                phi_new, totals_new = self._sync_with_retry(
                    synchronize,
                    self.state.phi,
                    [d.phi for d in self.devices],
                    [d.totals for d in self.devices],
                    gpus=[d.gpu for d in self.devices],
                    phi_bytes=phi_bytes,
                )
                self.state.phi[...] = phi_new
                self.state.topic_totals[...] = totals_new
            else:
                # Pre-reduced functional merge first — O(W*K*V), and it
                # unblocks the next iteration's kick-off...
                phi_new, totals_new = self._sync_with_retry(
                    synchronize_prereduced,
                    self.state.phi,
                    self.state.topic_totals,
                    engine.worker_accumulators(),
                )
                self.state.phi[...] = phi_new
                self.state.topic_totals[...] = totals_new
                if pipeline and n + 1 < num_iterations and not validate_due:
                    # ...the paper's "phi first" at the process level:
                    # workers broadcast the reconciled model into their
                    # own replicas and start sampling iteration i+1 while
                    # the master replays clocks and scores likelihood.
                    engine.model_phi()[...] = phi_new
                    engine.model_totals()[...] = totals_new
                    engine.dispatch_iteration(
                        it + 1,
                        want_ll=needs_ll(it + 1),
                        refresh_replicas=True,
                    )
                    inflight = it + 1
                else:
                    # Pipeline drained (last iteration, validation due,
                    # callbacks present, or plain prereduce): the master
                    # broadcasts while the workers idle.
                    for dev in self.devices:
                        dev.phi[...] = phi_new
                        dev.totals[...] = totals_new
                outcome = replay_parallel_accounting(
                    self.devices, self.state, self.config, it, results
                )
                # Simulated Figure 4 sync charge, unchanged in every mode.
                gpus = [d.gpu for d in self.devices]
                if len(gpus) > 1:
                    simulate_phi_sync(gpus, phi_bytes)
            self.outcomes.append(outcome)
            t1 = barrier([d.gpu.timeline for d in self.devices])

            if validate_due:
                self.state.validate()
                for d in self.devices:
                    verify_phi_consistency(d.phi, d.totals, total_tokens)

            if need_ll:
                if engine is not None:
                    ll = self._assemble_likelihood(results) / total_tokens
                else:
                    ll = log_likelihood_per_token(self.state)
                ll = ensure_finite(ll, iteration=it)
            else:
                ll = None
            dur = t1 - t0
            self.history.append(
                IterationRecord(
                    iteration=it,
                    sim_seconds=dur,
                    cumulative_seconds=t1,
                    tokens_per_sec=total_tokens / dur if dur > 0 else 0.0,
                    log_likelihood_per_token=ll,
                    mean_kd=outcome.sum_kd / total_tokens if total_tokens else 0.0,
                    p1_fraction=(
                        outcome.num_p1_draws / total_tokens if total_tokens else 0.0
                    ),
                    changed_fraction=(
                        outcome.changed_tokens / total_tokens if total_tokens else 0.0
                    ),
                )
            )
            self._iterations_done += 1
            if callbacks:
                # Every callback observes every record (no short-circuit).
                stops = [cb.on_iteration_end(self, self.history[-1]) for cb in callbacks]
                if any(stops):
                    break
        return self.history

    def _assemble_likelihood(self, results) -> float:
        """Joint log-likelihood from worker-evaluated doc terms.

        Process modes never scan theta on the master: the word side comes
        from the reconciled master model, the document side is replayed
        from the per-chunk ``(plus, minus)`` terms the workers computed
        from their fresh theta before the barrier — in chunk order, so
        the float accumulation is **bit-identical** to the serial
        :func:`~repro.core.likelihood.log_likelihood`.
        """
        terms = []
        for cs in self.state.chunks:
            r = results[cs.chunk.spec.chunk_id]
            if r.ll_terms is None:  # pragma: no cover - dispatch mismatch
                raise RuntimeError(
                    "likelihood requested but the workers were not asked "
                    "for doc terms this iteration"
                )
            terms.append(r.ll_terms)
        return log_likelihood_from_terms(self.state, terms)

    # -- reporting --------------------------------------------------------------

    def describe(self) -> dict:
        """Identity and effective configuration (unified API contract)."""
        return {
            "description": self.DESCRIPTION,
            "num_topics": self.config.num_topics,
            "num_gpus": self.config.num_gpus,
            "chunks_per_gpu": self.config.chunks_per_gpu,
            "alpha": self.config.effective_alpha,
            "beta": self.config.effective_beta,
            "compute_dtype": self.config.compute_dtype,
            "execution": self.config.execution,
            "num_workers": (
                self._engine.num_workers if self._engine is not None
                else self.config.num_workers
            ),
            "sync_mode": self.config.sync_mode,
            "worker_affinity": self.config.worker_affinity,
            "seed": self.config.seed,
        }

    def workspace_stats(self) -> list[dict]:
        """Per-device kernel-arena occupancy (see docs/PERFORMANCE.md).

        Entries are in device order and carry a ``group`` index.  In
        process mode the arenas live in the worker processes and their
        stats are gathered over the control pipes — only while the
        engine is running; after :meth:`close` this returns ``[]``
        (the master-side pools never ran a kernel in process mode, so
        reporting them would present zero counters as the run's
        occupancy).
        """
        if self._engine is not None and self._engine.started:
            return self._engine.workspace_stats()
        if self.config.execution == "process":
            return []
        return [
            {"group": g, **dev.workspace.describe()}
            for g, dev in enumerate(self.devices)
            if dev.workspace is not None
        ]

    def kernel_breakdown(self) -> dict[str, float]:
        """Aggregated share of simulated time per kernel (Table 5 rows).

        Transfers and sync are included under their own keys; the paper's
        table normalises over the three kernels only, which
        :func:`repro.analysis.breakdown.table5_fractions` does.
        """
        merged: dict[str, float] = {}
        for dev in self.devices:
            for name, secs in dev.gpu.ledger.seconds.items():
                merged[name] = merged.get(name, 0.0) + secs
        return merged

    def average_tokens_per_sec(self, first_n: int | None = None) -> float:
        """Mean per-iteration throughput (Table 4 aggregates first 100)."""
        records = self.history if first_n is None else self.history[:first_n]
        if not records:
            raise ValueError("no iterations recorded yet")
        return float(np.mean([r.tokens_per_sec for r in records]))
