"""LDA model state: topic assignments, theta replicas, phi replicas.

The output of training (Section 2.1) is the pair of count matrices

- ``theta[d, k]`` — tokens of topic ``k`` in document ``d`` (sparse CSR,
  partitioned by chunk under partition-by-document);
- ``phi[k, v]`` — occurrences of word ``v`` under topic ``k`` in the whole
  corpus (dense, replicated per device and synchronized each iteration).

``topic_totals[k] = sum_v phi[k, v]`` is maintained alongside phi because
the sampler's denominator needs it per draw (Eq. 1).

Invariants (checked by :meth:`LdaState.validate`):

- ``phi.sum() == T`` and ``topic_totals == phi.sum(axis=1)``;
- per chunk, ``theta`` row sums equal the local document lengths;
- ``sum of all theta == T`` — token conservation across replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.document import Corpus
from repro.corpus.encoding import DeviceChunk, encode_chunk, topic_dtype_for
from repro.corpus.partition import ChunkSpec, partition_by_tokens
from repro.core.config import TrainerConfig
from repro.core.rng import RngPool
from repro.core.sparse import CsrCounts, from_assignments


@dataclass
class ChunkState:
    """Mutable per-chunk replica: the chunk's tokens' topics and theta."""

    chunk: DeviceChunk
    topics: np.ndarray  # topic per token, aligned with the chunk's word-first order
    theta: CsrCounts

    @property
    def num_tokens(self) -> int:
        return self.chunk.num_tokens

    def rebuild_theta(self, num_topics: int, compress: bool = True) -> CsrCounts:
        """Recompute theta from current assignments (update-theta kernel)."""
        self.theta = from_assignments(
            self.chunk.token_docs,
            self.topics.astype(np.int64),
            num_rows=self.chunk.num_local_docs,
            num_cols=num_topics,
            compress=compress,
        )
        return self.theta


@dataclass
class LdaState:
    """Full training state across all chunks.

    ``phi``/``topic_totals`` here are the *reference* (synchronized) model;
    the multi-GPU scheduler keeps per-device copies and reconciles them
    into this one each iteration (Section 5.2).
    """

    num_topics: int
    num_words: int
    alpha: float
    beta: float
    chunks: list[ChunkState]
    phi: np.ndarray = field(init=False)  # int32[K, V]
    topic_totals: np.ndarray = field(init=False)  # int64[K]

    def __post_init__(self) -> None:
        if self.num_topics < 2:
            raise ValueError("num_topics must be >= 2")
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("hyper-parameters must be positive")
        self.phi = np.zeros((self.num_topics, self.num_words), dtype=np.int32)
        for cs in self.chunks:
            np.add.at(
                self.phi,
                (cs.topics.astype(np.int64), cs.chunk.token_words.astype(np.int64)),
                1,
            )
        self.topic_totals = self.phi.sum(axis=1, dtype=np.int64)

    # -- construction ------------------------------------------------------

    @classmethod
    def initialize(
        cls,
        corpus: Corpus,
        config: TrainerConfig,
        chunk_specs: list[ChunkSpec] | None = None,
    ) -> LdaState:
        """Random-topic initialisation over a chunked corpus.

        Each token receives a uniform random topic ("Initially, each token
        is randomly assigned with a topic", Section 2.1); theta replicas
        are built immediately so the first sampling pass sees consistent
        counts.
        """
        if chunk_specs is None:
            chunk_specs = partition_by_tokens(corpus, config.num_chunks)
        pool = RngPool(config.seed)
        rng = pool.init_stream()
        tdtype = topic_dtype_for(config.num_topics, config.compress)
        chunks: list[ChunkState] = []
        for spec in chunk_specs:
            dc = encode_chunk(corpus, spec, config.tokens_per_block)
            topics = rng.integers(
                0, config.num_topics, size=dc.num_tokens, dtype=np.int64
            ).astype(tdtype)
            cs = ChunkState(chunk=dc, topics=topics, theta=None)  # type: ignore[arg-type]
            cs.rebuild_theta(config.num_topics, config.compress)
            chunks.append(cs)
        return cls(
            num_topics=config.num_topics,
            num_words=corpus.num_words,
            alpha=config.effective_alpha,
            beta=config.effective_beta,
            chunks=chunks,
        )

    # -- accessors -----------------------------------------------------------

    @property
    def num_tokens(self) -> int:
        return sum(cs.num_tokens for cs in self.chunks)

    def doc_topic_matrix(self) -> np.ndarray:
        """Dense theta over *global* documents (diagnostics / examples)."""
        num_docs = max(cs.chunk.spec.doc_hi for cs in self.chunks)
        out = np.zeros((num_docs, self.num_topics), dtype=np.int64)
        for cs in self.chunks:
            dense = cs.theta.to_dense()
            out[cs.chunk.spec.doc_lo : cs.chunk.spec.doc_hi] += dense
        return out

    def top_words(self, topic: int, n: int = 10) -> np.ndarray:
        """Word ids with the highest count under ``topic``."""
        if not (0 <= topic < self.num_topics):
            raise IndexError(f"topic {topic} out of range")
        if n < 1:
            raise ValueError("n must be >= 1")
        row = self.phi[topic]
        n = min(n, row.shape[0])
        part = np.argpartition(row, -n)[-n:]
        return part[np.argsort(row[part])[::-1]]

    # -- invariants -----------------------------------------------------------

    def validate(self) -> None:
        """Check the token-conservation invariants (raises on violation)."""
        total = self.num_tokens
        if int(self.phi.sum(dtype=np.int64)) != total:
            raise AssertionError(
                f"phi total {int(self.phi.sum(dtype=np.int64))} != T {total}"
            )
        if not np.array_equal(self.topic_totals, self.phi.sum(axis=1, dtype=np.int64)):
            raise AssertionError("topic_totals out of sync with phi")
        if np.any(self.phi < 0):
            raise AssertionError("negative phi count")
        theta_sum = 0
        for cs in self.chunks:
            lens = np.diff(cs.chunk.doc_offsets)
            row_sums = np.zeros(cs.chunk.num_local_docs, dtype=np.int64)
            rows = np.repeat(
                np.arange(cs.chunk.num_local_docs), cs.theta.row_lengths()
            )
            np.add.at(row_sums, rows, cs.theta.data.astype(np.int64))
            if not np.array_equal(row_sums, lens):
                raise AssertionError(
                    f"theta row sums != doc lengths in chunk {cs.chunk.spec.chunk_id}"
                )
            theta_sum += int(cs.theta.data.sum(dtype=np.int64))
        if theta_sum != total:
            raise AssertionError(f"theta total {theta_sum} != T {total}")

    def theta_density(self) -> float:
        """Mean Kd / K over documents — the sparsity Figure 7 tracks."""
        nnz = sum(cs.theta.nnz for cs in self.chunks)
        docs = sum(cs.chunk.num_local_docs for cs in self.chunks)
        if docs == 0:
            return 0.0
        return nnz / docs / self.num_topics

    def check_compression_safe(self) -> bool:
        """True if every phi count fits in 16 bits (the paper's assumption
        "we also use short integer which is accurate enough")."""
        return bool(self.phi.max(initial=0) <= np.iinfo(np.uint16).max)
