"""Trainer configuration.

Hyper-parameters follow the paper: ``alpha = 50 / K`` and ``beta = 0.01``
(Section 2.1 / Section 7, matching WarpLDA [10] and SaberLDA [20]).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TrainerConfig:
    """Configuration of a CuLDA_CGS training run.

    Attributes
    ----------
    num_topics:
        ``K``, the number of topics to infer (paper: 1k-10k at scale).
    alpha / beta:
        Dirichlet hyper-parameters; ``None`` selects the paper defaults
        ``50/K`` and ``0.01``.
    num_gpus:
        ``G``, devices used by the parallelization scheme (Section 5).
    chunks_per_gpu:
        ``M``; ``C = M * G`` chunks total.  ``M = 1`` keeps chunks resident
        (WorkSchedule1); ``M > 1`` streams chunks through the device
        (WorkSchedule2) with transfer/compute overlap.
    compress:
        Enable the 16-bit data compression of Section 6.1.3.
    share_p2_tree:
        Share the p2(k)/p*(k) index tree across the samplers of a thread
        block (Section 6.1.2).  Disabling reproduces the "naive
        parallelization" the paper argues against (ablation bench).
    use_l1_for_indices:
        Route sparse-index loads through L1 (Section 6.1.2, citing [28]).
    overlap_transfers:
        Pipeline transfers with compute in WorkSchedule2 (Section 5.1).
    tokens_per_block:
        Upper bound on tokens per thread block (Figure 6 splitting).
    compute_dtype:
        Floating dtype of the sampling kernel: ``"float64"`` (default,
        bit-identical to the historical kernel under a fixed seed) or
        ``"float32"`` (half the bandwidth; a different but statistically
        equivalent chain — see docs/PERFORMANCE.md).
    execution:
        ``"serial"`` (default) runs the device loop in-process;
        ``"process"`` runs each simulated device's per-iteration work on
        real OS workers over shared memory (see :mod:`repro.parallel`).
        Both modes produce bit-identical draws for the same seed.
    num_workers:
        OS worker processes for ``execution="process"``; ``None`` uses
        ``min(num_gpus, os.cpu_count())``.  Ignored in serial mode.
    sync_mode:
        How process execution reconciles phi at the iteration barrier
        (requires ``execution="process"`` for the non-default values):

        - ``"barrier"`` (default) — the master differences every device
          replica against the reference model (O(G*K*V) merge);
        - ``"prereduce"`` — each worker pre-reduces its own devices' phi
          deltas into a per-worker shared accumulator before the
          barrier, cutting the master's merge to O(W*K*V);
        - ``"overlap"`` — pre-reduce plus the paper's Section 6.2 "phi
          first" trick at the process level: the master's merge result
          is broadcast *by the workers* at the next iteration's kick-off
          and the master's accounting/likelihood runs while they sample.

        All three modes produce bit-identical draws, models, likelihood
        trajectories and simulated clocks (goldens assert it); only host
        wall-clock moves.
    worker_affinity:
        Optional CPU ids to pin OS workers to (``os.sched_setaffinity``;
        worker ``w`` is pinned to ``worker_affinity[w % len]``).  Ignored
        in serial mode and on platforms without affinity support.
    recovery_retries:
        Process-mode crash recovery budget: how many times a crashed
        iteration may be replayed (pool respawn + shared-state rollback)
        before the run fails with
        :class:`~repro.parallel.engine.RecoveryFailed`.  ``0`` disables
        recovery (and the per-iteration snapshot copies).  Recovery is
        bit-identical — see docs/ROBUSTNESS.md.
    recovery_backoff:
        Base host-side backoff in seconds before respawn attempt ``k``
        (``recovery_backoff * 2**(k-1)``).  Wall-clock only; simulated
        clocks are unaffected.
    seed:
        RNG seed for the whole run (reproducible).
    """

    num_topics: int
    alpha: float | None = None
    beta: float | None = None
    num_gpus: int = 1
    chunks_per_gpu: int = 1
    compress: bool = True
    share_p2_tree: bool = True
    use_l1_for_indices: bool = True
    overlap_transfers: bool = True
    tokens_per_block: int = 1024
    compute_dtype: str = "float64"
    execution: str = "serial"
    num_workers: int | None = None
    sync_mode: str = "barrier"
    worker_affinity: tuple[int, ...] | None = None
    recovery_retries: int = 2
    recovery_backoff: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_topics < 2:
            raise ValueError(f"num_topics must be >= 2, got {self.num_topics}")
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.chunks_per_gpu < 1:
            raise ValueError(f"chunks_per_gpu must be >= 1, got {self.chunks_per_gpu}")
        if self.tokens_per_block < 32:
            raise ValueError("tokens_per_block must be >= 32 (one warp)")
        if self.alpha is not None and self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.beta is not None and self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")
        if self.compute_dtype not in ("float32", "float64"):
            raise ValueError(
                f"compute_dtype must be 'float32' or 'float64', "
                f"got {self.compute_dtype!r}"
            )
        if self.execution not in ("serial", "process"):
            raise ValueError(
                f"execution must be 'serial' or 'process', "
                f"got {self.execution!r}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1 (or None), got {self.num_workers}"
            )
        if self.sync_mode not in ("barrier", "prereduce", "overlap"):
            raise ValueError(
                f"sync_mode must be 'barrier', 'prereduce' or 'overlap', "
                f"got {self.sync_mode!r}"
            )
        if self.sync_mode != "barrier" and self.execution != "process":
            raise ValueError(
                f"sync_mode={self.sync_mode!r} requires execution='process' "
                f"(serial execution has no workers to overlap with)"
            )
        if self.recovery_retries < 0:
            raise ValueError(
                f"recovery_retries must be >= 0, got {self.recovery_retries}"
            )
        if self.recovery_backoff < 0:
            raise ValueError(
                f"recovery_backoff must be >= 0, got {self.recovery_backoff}"
            )
        if self.worker_affinity is not None:
            from repro.parallel.worker import normalize_affinity

            try:
                affinity = normalize_affinity(self.worker_affinity)
            except ValueError as exc:
                raise ValueError(f"worker_affinity: {exc}") from None
            if affinity is None:
                raise ValueError(
                    "worker_affinity must be a non-empty sequence of "
                    "CPU ids, or None"
                )
            object.__setattr__(self, "worker_affinity", affinity)

    @property
    def effective_alpha(self) -> float:
        """Paper default: alpha = 50 / K."""
        return self.alpha if self.alpha is not None else 50.0 / self.num_topics

    @property
    def effective_beta(self) -> float:
        """Paper default: beta = 0.01."""
        return self.beta if self.beta is not None else 0.01

    @property
    def num_chunks(self) -> int:
        """``C = M * G`` (Section 5.1)."""
        return self.num_gpus * self.chunks_per_gpu
