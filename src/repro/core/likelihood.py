"""Model quality metric: joint log-likelihood per token (Figure 8).

The standard collapsed-LDA joint likelihood of the assignments:

    log p(w, z) = log p(w | z) + log p(z)

    log p(w|z) = K [ lnG(V*beta) - V lnG(beta) ]
               + sum_k [ sum_v lnG(phi[k,v] + beta) - lnG(N_k + V*beta) ]

    log p(z)   = D [ lnG(K*alpha) - K lnG(alpha) ]
               + sum_d [ sum_k lnG(theta[d,k] + alpha) - lnG(L_d + K*alpha) ]

where ``lnG`` is the log-gamma function, ``N_k`` the topic totals and
``L_d`` the document lengths.  The paper plots this quantity divided by
the token count against elapsed (here: simulated) time.

Computed sparsely: zero entries of phi/theta contribute ``lnG(beta)`` /
``lnG(alpha)`` which fold into closed-form constants, so cost is
O(nnz(phi) + nnz(theta)), not O(KV + DK).

``lnG`` over the counts is served from a cached lookup table
(:func:`repro.perf.lngamma_table`): counts are small integers, so the
whole pass is integer binning/gathers plus one table read per *distinct*
count value — no per-element transcendental evaluation.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.core.model import LdaState
from repro.perf import counts_of_counts_lngamma, lngamma_table


class NumericalError(ArithmeticError):
    """A likelihood evaluation produced NaN/inf.

    A non-finite LL/token means the chain's counts are broken (overflow,
    corrupted state, a kernel bug) — silently propagating ``nan`` would
    poison callbacks (early stopping compares against it and never
    stops) and get persisted into checkpoints.  Raised by
    :func:`ensure_finite`, naming the iteration when the caller knows it.
    """

    def __init__(self, value: float, iteration: int | None = None):
        where = f" at iteration {iteration}" if iteration is not None else ""
        super().__init__(
            f"non-finite log-likelihood ({value!r}){where}: the model "
            f"state is numerically broken"
        )
        self.value = value
        self.iteration = iteration


def ensure_finite(value: float, *, iteration: int | None = None) -> float:
    """Pass ``value`` through, raising :class:`NumericalError` on NaN/inf.

    The guard every LL producer wraps its result in before the number
    reaches records, callbacks or checkpoints.
    """
    if not np.isfinite(value):
        raise NumericalError(float(value), iteration)
    return float(value)


def likelihood_due(iteration: int, every: int) -> bool:
    """The default LL cadence: every ``every``-th completed iteration.

    The single definition of the modulus rule — the trainers' loops and
    the callback fallback (:func:`repro.api.callbacks.likelihood_needed`)
    all call this, so the ``want_ll`` a worker is dispatched with can
    never desynchronize from the record the master writes.
    """
    return bool(every) and (iteration + 1) % every == 0


def word_side_log_likelihood(
    phi: np.ndarray,
    topic_totals: np.ndarray,
    num_topics: int,
    num_words: int,
    beta: float,
) -> float:
    """``log p(w | z)``: the phi half of the joint likelihood.

    phi is dense int, but only non-zeros differ from the lnG(beta)
    baseline, which folds into the closed form:
    ``K lnG(V*beta) + sum_nz [lnG(val+beta) - lnG(beta)]
    - sum_k lnG(N_k + V*beta)``.
    """
    hist = np.bincount(phi.reshape(-1))
    word_side = float(num_topics * gammaln(num_words * beta))
    word_side += counts_of_counts_lngamma(hist, beta)
    word_side -= float(
        np.sum(gammaln(topic_totals.astype(np.float64) + num_words * beta))
    )
    return word_side


def chunk_doc_terms(
    theta_data: np.ndarray,
    doc_offsets: np.ndarray,
    num_topics: int,
    alpha: float,
) -> tuple[float, float]:
    """One chunk's document-side contribution as a ``(plus, minus)`` pair.

    ``plus`` is the theta-count term ``sum_nz [lnG(val+alpha) - lnG(alpha)]``,
    ``minus`` the length normaliser ``sum_d lnG(L_d + K*alpha)``.  Pure in
    the chunk's theta values and document lengths, so an execution worker
    can evaluate it from the shared state between barriers and the master
    reassembles the exact serial total with :func:`assemble_log_likelihood`.
    """
    vals = theta_data.astype(np.int64)
    table = lngamma_table(alpha, int(vals.max(initial=0)) + 1)
    plus = float(np.sum(table[vals] - table[0]))
    lens = np.diff(doc_offsets).astype(np.float64)
    minus = float(np.sum(gammaln(lens + num_topics * alpha)))
    return plus, minus


def assemble_log_likelihood(
    word_side: float,
    num_docs: int,
    num_topics: int,
    alpha: float,
    chunk_terms,
) -> float:
    """Combine the word side with per-chunk doc terms (serial-order adds).

    The accumulation replays exactly the float-op order of the single
    in-process loop — ``+= plus`` then ``-= minus`` per chunk, in chunk
    order — so a likelihood assembled from worker-computed terms is
    **bit-identical** to one computed on the master.
    """
    doc_side = float(num_docs * gammaln(num_topics * alpha))
    for plus, minus in chunk_terms:
        doc_side += plus
        doc_side -= minus
    return word_side + doc_side


def log_likelihood_from_terms(state: LdaState, chunk_terms) -> float:
    """Joint log p(w, z) with externally supplied document-side terms.

    ``chunk_terms`` must be the per-chunk ``(plus, minus)`` pairs of
    :func:`chunk_doc_terms` **in state-chunk order** — typically computed
    by the execution workers from the shared theta between barriers, so
    the master never scans theta.  Bit-identical to
    :func:`log_likelihood` on the same state.
    """
    word_side = word_side_log_likelihood(
        state.phi, state.topic_totals, state.num_topics, state.num_words,
        state.beta,
    )
    num_docs = sum(cs.chunk.num_local_docs for cs in state.chunks)
    return assemble_log_likelihood(
        word_side, num_docs, state.num_topics, state.alpha, chunk_terms
    )


def log_likelihood(state: LdaState) -> float:
    """Joint log p(w, z) of the current state."""
    word_side = word_side_log_likelihood(
        state.phi, state.topic_totals, state.num_topics, state.num_words,
        state.beta,
    )
    # --- document side: theta replicas are CSR (already nnz-only); the
    # cached table turns lnG(val + alpha) into a gather per entry.
    num_docs = sum(cs.chunk.num_local_docs for cs in state.chunks)
    terms = [
        chunk_doc_terms(
            cs.theta.data, cs.chunk.doc_offsets, state.num_topics, state.alpha
        )
        for cs in state.chunks
    ]
    return assemble_log_likelihood(
        word_side, num_docs, state.num_topics, state.alpha, terms
    )


def log_likelihood_per_token(state: LdaState) -> float:
    """The Figure 8 y-axis: joint log-likelihood divided by T."""
    t = state.num_tokens
    if t == 0:
        raise ValueError("cannot normalise likelihood of an empty corpus")
    return log_likelihood(state) / t


def perplexity(state: LdaState) -> float:
    """``exp(-LL/T)`` — a conventional alternative view of the same metric."""
    return float(np.exp(-log_likelihood_per_token(state)))
