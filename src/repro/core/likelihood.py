"""Model quality metric: joint log-likelihood per token (Figure 8).

The standard collapsed-LDA joint likelihood of the assignments:

    log p(w, z) = log p(w | z) + log p(z)

    log p(w|z) = K [ lnG(V*beta) - V lnG(beta) ]
               + sum_k [ sum_v lnG(phi[k,v] + beta) - lnG(N_k + V*beta) ]

    log p(z)   = D [ lnG(K*alpha) - K lnG(alpha) ]
               + sum_d [ sum_k lnG(theta[d,k] + alpha) - lnG(L_d + K*alpha) ]

where ``lnG`` is the log-gamma function, ``N_k`` the topic totals and
``L_d`` the document lengths.  The paper plots this quantity divided by
the token count against elapsed (here: simulated) time.

Computed sparsely: zero entries of phi/theta contribute ``lnG(beta)`` /
``lnG(alpha)`` which fold into closed-form constants, so cost is
O(nnz(phi) + nnz(theta)), not O(KV + DK).

``lnG`` over the counts is served from a cached lookup table
(:func:`repro.perf.lngamma_table`): counts are small integers, so the
whole pass is integer binning/gathers plus one table read per *distinct*
count value — no per-element transcendental evaluation.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.core.model import LdaState
from repro.perf import counts_of_counts_lngamma, lngamma_table


def log_likelihood(state: LdaState) -> float:
    """Joint log p(w, z) of the current state."""
    k = state.num_topics
    v = state.num_words
    alpha, beta = state.alpha, state.beta

    # --- word side: phi is dense int, but only non-zeros differ from the
    # lnG(beta) baseline, which folds into the closed form:
    #   K lnG(V*beta) + sum_nz [lnG(val+beta) - lnG(beta)] - sum_k lnG(N_k+V*beta)
    hist = np.bincount(state.phi.reshape(-1))
    word_side = float(k * gammaln(v * beta))
    word_side += counts_of_counts_lngamma(hist, beta)
    word_side -= float(
        np.sum(gammaln(state.topic_totals.astype(np.float64) + v * beta))
    )

    # --- document side: theta replicas are CSR (already nnz-only); the
    # cached table turns lnG(val + alpha) into a gather per entry.
    num_docs = sum(cs.chunk.num_local_docs for cs in state.chunks)
    doc_side = float(num_docs * gammaln(k * alpha))
    for cs in state.chunks:
        vals = cs.theta.data.astype(np.int64)
        table = lngamma_table(alpha, int(vals.max(initial=0)) + 1)
        doc_side += float(np.sum(table[vals] - table[0]))
        lens = np.diff(cs.chunk.doc_offsets).astype(np.float64)
        doc_side -= float(np.sum(gammaln(lens + k * alpha)))
    return word_side + doc_side


def log_likelihood_per_token(state: LdaState) -> float:
    """The Figure 8 y-axis: joint log-likelihood divided by T."""
    t = state.num_tokens
    if t == 0:
        raise ValueError("cannot normalise likelihood of an empty corpus")
    return log_likelihood(state) / t


def perplexity(state: LdaState) -> float:
    """``exp(-LL/T)`` — a conventional alternative view of the same metric."""
    return float(np.exp(-log_likelihood_per_token(state)))
