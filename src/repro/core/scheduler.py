"""Workload scheduling: Algorithm 1 (WorkSchedule1 / WorkSchedule2).

``C = M * G`` chunks are assigned round-robin (chunk ``i`` to GPU
``i % G``, smaller ids first).  Two schedules:

- **WorkSchedule1** (``M = 1``): every GPU holds its chunk (and theta
  replica) resident for the whole run; data moves host<->device only at
  the start and end of training.
- **WorkSchedule2** (``M > 1``): chunks stream through the device each
  iteration.  With ``overlap_transfers`` the schedule double-buffers two
  chunk slots and pipelines chunk ``m+1``'s H2D copy with chunk ``m``'s
  compute on separate streams — the paper's stream-interface overlap.
  Device memory must hold **two** chunks in this mode (Section 5.1), and
  the allocator enforces it.

Within one chunk the kernel order is: sampling, update-phi, update-theta
— phi first so the iteration-end phi synchronization can start while
theta updates still run (Section 6.2, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TrainerConfig
from repro.core.costs import (
    sampling_cost,
    theta_replica_bytes,
    update_phi_cost,
    update_theta_cost,
)
from repro.core.model import ChunkState, LdaState
from repro.core.rng import RngPool
from repro.core.sampler import sample_chunk
from repro.core.updates import apply_phi_update
from repro.gpusim.cache import gpu_l1_index_factor
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.stream import Stream, barrier
from repro.perf import Workspace


@dataclass
class DeviceState:
    """One GPU's replica and its round-robin chunk assignment.

    ``workspace`` is the device's reusable kernel arena: the sampling
    kernel draws every large temporary from it, so after the first pass
    over the device's chunks the steady state allocates (almost)
    nothing — the NumPy analogue of static device buffers.
    """

    gpu: SimulatedGPU
    phi: np.ndarray  # int32[K, V] replica
    totals: np.ndarray  # int64[K] replica
    chunk_ids: list[int] = field(default_factory=list)
    workspace: Workspace | None = None


@dataclass(frozen=True)
class ChunkRecord:
    """Everything needed to re-derive one chunk pass's kernel costs.

    The functional trajectory of a run depends only on (corpus, config,
    seed) — never on the device spec — so recording these per chunk lets
    :mod:`repro.analysis.replay` price the same run on a *different*
    platform without re-running the sampler (used by the Figure 7 /
    Table 4 benches).
    """

    stats: object  # SamplingStats (kept loose to avoid import cycle)
    num_local_docs: int
    theta_nnz_pre: int  # nnz when the sampling kernel ran (L1 model input)
    theta_nnz_post: int  # nnz after update-theta (its compaction cost)


@dataclass
class IterationOutcome:
    """Aggregated statistics of one training iteration."""

    iteration: int
    sum_kd: int = 0
    num_p1_draws: int = 0
    num_p2_draws: int = 0
    changed_tokens: int = 0
    chunk_records: list[ChunkRecord] = field(default_factory=list)


def charge_chunk_costs(
    dev: DeviceState,
    config: TrainerConfig,
    stats,
    theta_nnz_pre: int,
    theta_nnz_post: int,
    num_local_docs: int,
    stream: Stream | None = None,
) -> None:
    """Charge one chunk pass's three kernel launches on the device clock.

    Pure accounting — touches only the simulated timeline, never the
    arrays — so serial execution calls it inline while process execution
    calls it on the master with worker-reported statistics.
    """
    if config.use_l1_for_indices:
        from repro.core.costs import int_bytes

        index_ws = theta_nnz_pre * int_bytes(config.compress) / dev.gpu.spec.num_sms
        l1f = gpu_l1_index_factor(dev.gpu.spec, index_ws)
    else:
        l1f = 1.0
    dev.gpu.launch(
        "sampling",
        sampling_cost(stats, config.compress, config.share_p2_tree, l1f),
        stream,
    )
    dev.gpu.launch(
        "update_phi", update_phi_cost(stats.num_tokens, config.compress), stream
    )
    dev.gpu.launch(
        "update_theta",
        update_theta_cost(
            stats.num_tokens,
            num_local_docs,
            config.num_topics,
            theta_nnz_post,
            config.compress,
        ),
        stream,
    )


def record_chunk_outcome(
    outcome: IterationOutcome,
    stats,
    changed: int,
    num_local_docs: int,
    theta_nnz_pre: int,
    theta_nnz_post: int,
) -> None:
    """Fold one chunk pass's statistics into the iteration outcome."""
    outcome.sum_kd += stats.sum_kd
    outcome.num_p1_draws += stats.num_p1_draws
    outcome.num_p2_draws += stats.num_p2_draws
    outcome.changed_tokens += changed
    outcome.chunk_records.append(
        ChunkRecord(
            stats=stats,
            num_local_docs=num_local_docs,
            theta_nnz_pre=theta_nnz_pre,
            theta_nnz_post=theta_nnz_post,
        )
    )


def run_chunk_kernels(
    dev: DeviceState,
    cs: ChunkState,
    iteration: int,
    pool: RngPool,
    config: TrainerConfig,
    outcome: IterationOutcome,
    stream: Stream | None = None,
) -> None:
    """Sampling + update-phi + update-theta for one chunk on one device.

    Functional effects: ``cs.topics``/``cs.theta`` are replaced and the
    device replica ``dev.phi``/``dev.totals`` updated in place.  Timeline
    effects: three kernel launches charged with Table-1-derived costs.
    """
    rng = pool.chunk_stream(iteration, cs.chunk.spec.chunk_id)
    theta_nnz_pre = cs.theta.nnz
    result = sample_chunk(
        cs.chunk, cs.topics, cs.theta, dev.phi, dev.totals,
        alpha=config.effective_alpha, beta=config.effective_beta, rng=rng,
        workspace=dev.workspace,
    )
    stats = result.stats

    changed = apply_phi_update(
        dev.phi, dev.totals, cs.chunk.token_words, cs.topics, result.new_topics
    )
    cs.topics = result.new_topics
    cs.rebuild_theta(config.num_topics, config.compress)
    charge_chunk_costs(
        dev, config, stats, theta_nnz_pre, cs.theta.nnz,
        cs.chunk.num_local_docs, stream,
    )
    record_chunk_outcome(
        outcome, stats, changed, cs.chunk.num_local_docs,
        theta_nnz_pre, cs.theta.nnz,
    )


def work_schedule_1(
    devices: list[DeviceState],
    state: LdaState,
    config: TrainerConfig,
    iteration: int,
    pool: RngPool,
) -> IterationOutcome:
    """One iteration with resident chunks (Algorithm 1, lines 6-21)."""
    outcome = IterationOutcome(iteration)
    for dev in devices:
        for cid in dev.chunk_ids:
            run_chunk_kernels(dev, state.chunks[cid], iteration, pool, config, outcome)
    barrier([d.gpu.timeline for d in devices])
    return outcome


def work_schedule_2(
    devices: list[DeviceState],
    state: LdaState,
    config: TrainerConfig,
    iteration: int,
    pool: RngPool,
) -> IterationOutcome:
    """One iteration with streamed chunks (Algorithm 1, lines 22-36).

    Per chunk: H2D of the chunk's token arrays and theta, the three
    kernels, then D2H of the updated theta.  With ``overlap_transfers``
    two streams alternate so chunk ``m+1``'s copy rides under chunk
    ``m``'s compute (pipelined loop of Section 5.1).
    """
    outcome = IterationOutcome(iteration)
    for dev in devices:
        if config.overlap_transfers:
            streams = [dev.gpu.create_stream(), dev.gpu.create_stream()]
        else:
            streams = [dev.gpu.default_stream]
        for slot, cid in enumerate(dev.chunk_ids):
            cs = state.chunks[cid]
            stream = streams[slot % len(streams)]
            chunk_bytes = cs.chunk.nbytes()
            theta_bytes = theta_replica_bytes(
                cs.theta.nnz, cs.chunk.num_local_docs, config.compress
            )
            dev.gpu.h2d("transfer", chunk_bytes + theta_bytes, stream)
            run_chunk_kernels(dev, cs, iteration, pool, config, outcome, stream)
            theta_bytes = theta_replica_bytes(
                cs.theta.nnz, cs.chunk.num_local_docs, config.compress
            )
            dev.gpu.d2h("transfer", theta_bytes, stream)
    barrier([d.gpu.timeline for d in devices])
    return outcome


def run_iteration(
    devices: list[DeviceState],
    state: LdaState,
    config: TrainerConfig,
    iteration: int,
    pool: RngPool,
) -> IterationOutcome:
    """Dispatch on M, mirroring Algorithm 1's top-level branch."""
    if config.chunks_per_gpu == 1:
        return work_schedule_1(devices, state, config, iteration, pool)
    return work_schedule_2(devices, state, config, iteration, pool)


def replay_parallel_accounting(
    devices: list[DeviceState],
    state: LdaState,
    config: TrainerConfig,
    iteration: int,
    results,
) -> IterationOutcome:
    """Master-side accounting of one engine iteration.

    The workers mutate the shared replicas/topics/theta in
    serial-schedule order per device; this master-side pass then replays
    the *accounting* of the matching schedule — kernel launches from the
    worker-reported statistics, plus WorkSchedule2's per-chunk transfers
    — so the simulated clocks are identical to serial execution.  Pure
    in ``results``: it never reads the shared arrays, so it is safe to
    run while the workers already sample the next iteration.
    """
    outcome = IterationOutcome(iteration)
    streamed = config.chunks_per_gpu > 1
    for dev in devices:
        if streamed and config.overlap_transfers:
            streams = [dev.gpu.create_stream(), dev.gpu.create_stream()]
        else:
            streams = [dev.gpu.default_stream]
        for slot, cid in enumerate(dev.chunk_ids):
            cs = state.chunks[cid]
            r = results[cid]
            stream = streams[slot % len(streams)] if streamed else None
            if streamed:
                chunk_bytes = cs.chunk.nbytes()
                dev.gpu.h2d(
                    "transfer",
                    chunk_bytes
                    + theta_replica_bytes(
                        r.theta_nnz_pre, cs.chunk.num_local_docs, config.compress
                    ),
                    stream,
                )
            charge_chunk_costs(
                dev, config, r.stats, r.theta_nnz_pre, r.theta_nnz,
                cs.chunk.num_local_docs, stream,
            )
            if streamed:
                dev.gpu.d2h(
                    "transfer",
                    theta_replica_bytes(
                        r.theta_nnz, cs.chunk.num_local_docs, config.compress
                    ),
                    stream,
                )
            record_chunk_outcome(
                outcome, r.stats, r.changed, cs.chunk.num_local_docs,
                r.theta_nnz_pre, r.theta_nnz,
            )
    barrier([d.gpu.timeline for d in devices])
    return outcome
