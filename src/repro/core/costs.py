"""Cost builders: Table 1 formulas applied to runtime statistics.

Table 1 of the paper gives, for each step of one LDA sampling, the flop
and byte counts as functions of ``K`` (topics) and ``Kd`` (non-zeros of
the token's document row of theta):

    ==================  =======================  ==========================
    Step                Flops                    Bytes
    ==================  =======================  ==========================
    Compute S           4 * Kd                   3 * Int * Kd
    Compute Q           2 * K                    2 * Int * K
    Sampling from p1    6 * Kd                   (3*Int + 2*Float) * Kd
    Sampling from p2    3 * K                    (2*Int + 2*Float) * K
    ==================  =======================  ==========================

The builders below apply these formulas to the *measured* statistics of a
chunk pass (sum of Kd over sampled tokens, bucket counts, block counts),
then apply the Section 6 optimizations where enabled:

- **block-shared p2 tree** (6.1.2): the Q/p*(k) pass is charged once per
  thread block instead of once per token;
- **tree-based p2 draw** (6.1.1): a draw touches only the root-to-leaf
  path (the tree lives in shared memory), not the whole K-vector;
- **L1-cached sparse indices** (6.1.2): index traffic is discounted by
  the L1 model;
- **16-bit compression** (6.1.3): ``Int = 2`` instead of 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.clock import KernelCost

FLOAT_BYTES = 4
INT32_BYTES = 4
INT16_BYTES = 2

#: Fraction of the compute-S / sample-p1 byte traffic that is sparse-index
#: loads (1 of the 3 integers per non-zero is the CSR column index).
INDEX_TRAFFIC_FRACTION = 1.0 / 3.0


def int_bytes(compress: bool) -> int:
    """Integer width under the Section 6.1.3 compression policy."""
    return INT16_BYTES if compress else INT32_BYTES


@dataclass(frozen=True)
class SamplingStats:
    """Measured statistics of one chunk sampling pass.

    Collected by :func:`repro.core.sampler.sample_chunk`; every cost below
    is a deterministic function of these numbers, so tests can check cost
    accounting without re-running the sampler.
    """

    num_tokens: int
    sum_kd: int  # sum over tokens of their document's theta row length
    sum_kd_p1: int  # same, restricted to tokens that drew from p1
    num_p1_draws: int
    num_p2_draws: int
    num_blocks: int
    num_topics: int
    tree_depth: int  # depth of the 32-way p2 index tree

    def __post_init__(self) -> None:
        if self.num_p1_draws + self.num_p2_draws != self.num_tokens:
            raise ValueError("bucket draws must partition the tokens")
        if min(self.num_tokens, self.sum_kd, self.sum_kd_p1, self.num_blocks) < 0:
            raise ValueError("statistics must be non-negative")

    @property
    def mean_kd(self) -> float:
        """Average theta-row density — the sparsity the paper tracks."""
        return self.sum_kd / self.num_tokens if self.num_tokens else 0.0


def sampling_cost(
    stats: SamplingStats,
    compress: bool = True,
    share_p2_tree: bool = True,
    l1_index_factor: float = 1.0,
) -> KernelCost:
    """Cost of the sampling kernel for one chunk pass.

    ``l1_index_factor`` is the fraction of index traffic charged to DRAM
    (from :func:`repro.gpusim.cache.gpu_l1_index_factor`); 1.0 disables
    the L1 optimization.
    """
    if not (0 <= l1_index_factor <= 1):
        raise ValueError("l1_index_factor must be in [0, 1]")
    ib = int_bytes(compress)
    k = stats.num_topics

    # Compute S: per token, walk the document's theta row.
    s_flops = 4.0 * stats.sum_kd
    s_bytes = 3.0 * ib * stats.sum_kd

    # Compute Q + build the p*(k) tree: per block when shared, else per token.
    q_units = stats.num_blocks if share_p2_tree else stats.num_tokens
    q_flops = 2.0 * k * q_units
    q_bytes = 2.0 * ib * k * q_units

    # Sampling from p1: only the tokens that took the sparse bucket.
    p1_flops = 6.0 * stats.sum_kd_p1
    p1_bytes = (3.0 * ib + 2.0 * FLOAT_BYTES) * stats.sum_kd_p1

    # Sampling from p2: the tree lives in shared memory; only the
    # root-to-leaf path (2 floats per level) reaches charged storage.
    p2_flops = 2.0 * 32.0 * stats.tree_depth * stats.num_p2_draws
    p2_bytes = 2.0 * FLOAT_BYTES * stats.tree_depth * stats.num_p2_draws

    # Token bookkeeping: read word & doc ids, write the new topic.
    token_bytes = (2.0 * ib + ib) * stats.num_tokens

    read = s_bytes + q_bytes + p1_bytes + p2_bytes + 2.0 * ib * stats.num_tokens
    # L1 discount applies to the sparse-index share of the S / p1 walks.
    index_traffic = INDEX_TRAFFIC_FRACTION * (s_bytes + p1_bytes)
    read -= index_traffic * (1.0 - l1_index_factor)
    written = ib * stats.num_tokens  # the new topic assignment

    return KernelCost(
        bytes_read=read,
        bytes_written=written + (token_bytes - 3.0 * ib * stats.num_tokens),
        flops=s_flops + q_flops + p1_flops + p2_flops + 10.0 * stats.num_tokens,
    )


def update_phi_cost(num_tokens: int, compress: bool = True) -> KernelCost:
    """Cost of the update-phi kernel (Section 6.2).

    Word-sorted order makes the atomics data-local; two atomic adds per
    token (decrement old topic, increment new) plus streaming reads of
    the token's word id and both topics.
    """
    if num_tokens < 0:
        raise ValueError("num_tokens must be non-negative")
    ib = int_bytes(compress)
    return KernelCost(
        bytes_read=3.0 * ib * num_tokens,
        bytes_written=2.0 * ib * num_tokens,
        flops=2.0 * num_tokens,
        atomic_ops=2.0 * num_tokens,
    )


def update_theta_cost(
    num_tokens: int,
    num_docs: int,
    num_topics: int,
    nnz_theta: int,
    compress: bool = True,
) -> KernelCost:
    """Cost of the update-theta kernel (Section 6.2).

    Step 1 scatters each document's topics into a dense K-length row via
    atomics (the document-word map makes tokens of one document
    contiguous); step 2 compacts the dense row to CSR with a prefix sum.
    """
    if min(num_tokens, num_docs, num_topics, nnz_theta) < 0:
        raise ValueError("arguments must be non-negative")
    ib = int_bytes(compress)
    scatter = KernelCost(
        bytes_read=2.0 * ib * num_tokens,  # doc-word map + topic
        bytes_written=ib * num_tokens,
        flops=float(num_tokens),
        atomic_ops=float(num_tokens),
    )
    compact = KernelCost(
        bytes_read=ib * num_docs * num_topics,  # dense rows scan
        bytes_written=2.0 * ib * nnz_theta,  # CSR indices + data
        flops=2.0 * float(num_docs * num_topics),  # prefix sums
    )
    return scatter + compact


def phi_replica_bytes(num_topics: int, num_words: int, compress: bool = True) -> int:
    """Device footprint of one phi replica (dense K x V, Section 6.1.3)."""
    if num_topics < 1 or num_words < 1:
        raise ValueError("dimensions must be positive")
    return num_topics * num_words * int_bytes(compress)


def theta_replica_bytes(nnz: int, num_docs: int, compress: bool = True) -> int:
    """Device footprint of one theta replica in CSR."""
    if nnz < 0 or num_docs < 0:
        raise ValueError("arguments must be non-negative")
    return nnz * (int_bytes(compress) + INT32_BYTES) + (num_docs + 1) * 8


def tree_depth_for(num_topics: int, fanout: int = 32) -> int:
    """Depth of the fanout-way index tree over K leaves."""
    if num_topics < 1:
        raise ValueError("num_topics must be positive")
    if num_topics == 1:
        return 0
    return max(1, math.ceil(math.log(num_topics, fanout)))
