"""Model checkpointing: save/load trained LDA state.

Algorithm 1 ends by collecting the trained model from the devices (lines
17-20); a real deployment then persists it.  Snapshots are a single
``.npz`` with the corpus-independent model (phi, hyper-parameters) plus
the full chunked training state so a run can be resumed exactly (topic
assignments, chunk boundaries).

Schema v2 additionally makes the checkpoint *self-describing*: the
vocabulary, a lineage record (generation/parent/created_at, same shape
as v2 model artifacts) and a **run record** — algorithm name, trainer
kwargs, seed, iterations done, simulated-clock position and likelihood
cadence — everything ``repro train --resume`` needs to rebuild the
trainer and continue **bit-identically** (RNG streams are keyed by
``(seed, iteration, chunk)``, so the iteration counter is the entire RNG
cursor).  v1 files still load; their bundle simply has no
vocabulary/lineage/run.

Writes are atomic (temp file + ``os.replace``), so a crash mid-save can
never leave a torn checkpoint behind, and ``metadata_json`` carries a
sha256 digest over the payload arrays (:mod:`repro.integrity`) that
loaders recompute and compare — a bit-flipped checkpoint is a typed
``ValueError``, never a silently corrupted resume.  The file format is
versioned; loaders reject unknown versions and corrupted invariants
rather than silently mis-training.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.model import ChunkState, LdaState
from repro.integrity import integrity_record, verify_payload
from repro.corpus.document import Corpus
from repro.corpus.encoding import encode_chunk
from repro.corpus.partition import ChunkSpec
from repro.corpus.vocab import Vocabulary

#: Version written for checkpoint artifacts.  v2 adds the optional
#: ``vocab`` array and ``metadata_json`` (lineage + run record) on top
#: of the unchanged v1 array layout.  Model artifacts are owned by
#: :mod:`repro.model.serialize`; its READABLE_VERSIONS is shared here so
#: a model file handed to ``load_checkpoint`` reports "not a
#: checkpoint", not a version error.
FORMAT_VERSION = 2


def save_model(state: LdaState, path: str | Path) -> None:
    """Deprecated: persist the trained model to ``path``.

    Shim over the :class:`~repro.model.TopicModel` artifact (writes the
    current schema-v2 format).  Use ``trainer.export_model().save(path)``
    instead.
    """
    warnings.warn(
        "repro.core.snapshot.save_model is deprecated; use "
        "trainer.export_model().save(path) (repro.model.TopicModel)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.model import TopicModel

    TopicModel.from_state(state).save(path)


def load_model(path: str | Path) -> dict:
    """Deprecated: load a model artifact as a dict of arrays and scalars.

    Shim over :meth:`repro.model.TopicModel.load` (reads schema v1 and
    v2); returns the legacy key-checked dict.  Use ``TopicModel.load``
    directly for the typed artifact.

    Raises
    ------
    ValueError
        On version mismatch, wrong artifact kind, or violated invariants.
    """
    warnings.warn(
        "repro.core.snapshot.load_model is deprecated; use "
        "repro.model.TopicModel.load(path)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.model import TopicModel

    m = TopicModel.load(path)
    # Writable copies: the artifact's arrays are frozen, but this legacy
    # surface always handed out arrays the caller could mutate.
    return {
        "phi": np.array(m.phi),
        "topic_totals": np.array(m.topic_totals),
        "alpha": m.alpha,
        "beta": m.beta,
        "num_topics": m.num_topics,
        "num_words": m.num_words,
    }


@dataclass(frozen=True)
class CheckpointBundle:
    """Everything a v2 checkpoint carries.

    ``state`` is always present; ``vocabulary``, ``lineage`` and ``run``
    are ``None`` for v1 files (and for v2 files saved without them).
    ``run`` is the resumable-run record: ``algorithm``,
    ``trainer_kwargs``, ``seed``, ``iterations_done``, ``sim_time`` and
    ``likelihood_every``.
    """

    state: LdaState
    vocabulary: Vocabulary | None
    lineage: dict | None
    run: dict | None
    version: int
    #: Digest-verification outcome: ``{"status": "verified", ...}`` when
    #: the recorded sha256 matched, ``{"status": "unverified"}`` for
    #: files written before digests existed (corrupted files raise).
    integrity: dict | None = None


def run_info(
    trainer,
    algorithm: str | None = None,
    trainer_kwargs: dict | None = None,
    likelihood_every: int | None = None,
) -> dict | None:
    """Resumable-run record for ``trainer``, or ``None`` if it can't.

    Uses the unified-API surface when available (adapter ``name`` /
    ``_options`` and the trainer's ``resume_state()``); any trainer
    without ``resume_state`` is not resumable and yields ``None``.
    """
    resume = getattr(trainer, "resume_state", None)
    if resume is None:
        return None
    algorithm = algorithm or getattr(trainer, "name", None)
    if trainer_kwargs is None:
        trainer_kwargs = getattr(trainer, "_options", None)
    if algorithm is None or trainer_kwargs is None:
        return None
    info = {
        "algorithm": str(algorithm),
        "trainer_kwargs": dict(trainer_kwargs),
        **resume(),
    }
    if likelihood_every is not None:
        info["likelihood_every"] = int(likelihood_every)
    return info


def atomic_savez(path: str | Path, payload: dict) -> Path:
    """``np.savez_compressed`` with crash-safe replace semantics.

    Mirrors numpy's suffix rule (a path not ending in ``.npz`` gets it
    appended) so the visible filename is identical to a plain save; the
    data is staged in a sibling temp file and published with
    ``os.replace``, so readers only ever see a complete checkpoint.

    This is the one sanctioned way to write an ``.npz`` artifact — the
    RPR501 static check flags any direct ``np.savez*`` call elsewhere,
    because a torn file from a mid-write crash would otherwise reach the
    integrity-checked load path looking like real bit rot.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write a text file with crash-safe replace semantics.

    The content is staged in a sibling temp file and published with
    ``os.replace``, exactly like :func:`atomic_savez` — readers only ever
    see the previous complete file or the new complete file, never a
    torn one.  This is the sanctioned way to write any text/JSON
    artifact the repo persists (corpus-store manifests, vocabulary
    files, trace exports); the RPR501 static check flags direct
    ``Path.write_text`` calls elsewhere under ``src/repro``.
    """
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_json(path: str | Path, obj: dict, *, indent: int = 2) -> Path:
    """Serialise ``obj`` as JSON and publish it atomically.

    Thin convenience over :func:`atomic_write_text`; ``sort_keys`` keeps
    the byte layout a pure function of the content, so two writes of the
    same logical object are byte-identical files (what the corpus-store
    resume tests assert).
    """
    return atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=True) + "\n"
    )


def save_checkpoint(
    state: LdaState,
    path: str | Path,
    *,
    vocabulary: Vocabulary | None = None,
    run: dict | None = None,
    parent: str | None = None,
) -> Path:
    """Persist the complete training state (resumable); returns the path.

    ``vocabulary`` and ``run`` (see :func:`run_info`) make the
    checkpoint self-describing for ``repro train --resume``; ``parent``
    links the lineage record to the generation this checkpoint
    supersedes.  The write is atomic.
    """
    from repro.model import make_lineage

    payload: dict[str, np.ndarray | int | float | str] = {
        "version": FORMAT_VERSION,
        "kind": "checkpoint",
        "phi": state.phi,
        "topic_totals": state.topic_totals,
        "alpha": state.alpha,
        "beta": state.beta,
        "num_topics": state.num_topics,
        "num_words": state.num_words,
        "num_chunks": len(state.chunks),
    }
    if vocabulary is not None:
        payload["vocab"] = np.asarray(list(vocabulary), dtype=np.str_)
    for i, cs in enumerate(state.chunks):
        spec = cs.chunk.spec
        payload[f"chunk{i}_topics"] = cs.topics
        payload[f"chunk{i}_bounds"] = np.array(
            [spec.chunk_id, spec.doc_lo, spec.doc_hi, spec.token_lo, spec.token_hi],
            dtype=np.int64,
        )
    payload["metadata_json"] = json.dumps({
        "lineage": make_lineage(parent),
        "run": run,
        "integrity": integrity_record(payload),
    })
    return atomic_savez(path, payload)


def load_checkpoint(path: str | Path, corpus: Corpus) -> LdaState:
    """Rebuild a resumable :class:`LdaState` from a checkpoint + corpus.

    Reads v1 and v2 files; for the v2 metadata use
    :func:`load_checkpoint_full`.  The corpus must be the one the
    checkpoint was trained on (token counts per chunk are verified).
    """
    return load_checkpoint_full(path, corpus).state


def load_checkpoint_full(path: str | Path, corpus: Corpus) -> CheckpointBundle:
    """Load a checkpoint with its v2 metadata (vocabulary/lineage/run)."""
    with np.load(Path(path), allow_pickle=False) as z:
        data = {k: z[k] for k in z.files}
    _check_version(data)
    if str(data["kind"]) != "checkpoint":
        raise ValueError(f"not a checkpoint artifact: kind={data['kind']}")
    meta: dict = {}
    if "metadata_json" in data:
        meta = json.loads(str(data["metadata_json"]))
    try:
        integrity = verify_payload(data, meta)
    except ValueError as exc:
        raise ValueError(f"checkpoint corrupted: {exc}") from exc
    if int(data["num_words"]) != corpus.num_words:
        raise ValueError(
            f"checkpoint was trained on V={int(data['num_words'])}, "
            f"corpus has V={corpus.num_words}"
        )
    num_topics = int(data["num_topics"])
    chunks: list[ChunkState] = []
    for i in range(int(data["num_chunks"])):
        cid, doc_lo, doc_hi, tok_lo, tok_hi = data[f"chunk{i}_bounds"]
        spec = ChunkSpec(int(cid), int(doc_lo), int(doc_hi), int(tok_lo), int(tok_hi))
        dc = encode_chunk(corpus, spec)
        topics = data[f"chunk{i}_topics"]
        if topics.shape[0] != dc.num_tokens:
            raise ValueError(
                f"chunk {i}: checkpoint has {topics.shape[0]} topics, "
                f"corpus chunk has {dc.num_tokens} tokens — wrong corpus?"
            )
        cs = ChunkState(chunk=dc, topics=topics, theta=None)  # type: ignore[arg-type]
        cs.rebuild_theta(num_topics)
        chunks.append(cs)
    state = LdaState(
        num_topics=num_topics,
        num_words=corpus.num_words,
        alpha=float(data["alpha"]),
        beta=float(data["beta"]),
        chunks=chunks,
    )
    # The rebuilt phi must match the stored one, or the corpus differs.
    if not np.array_equal(state.phi, data["phi"]):
        raise ValueError("checkpoint does not match this corpus (phi mismatch)")
    state.validate()
    vocabulary = None
    if "vocab" in data:
        vocabulary = Vocabulary([str(t) for t in data["vocab"]])
    return CheckpointBundle(
        state=state,
        vocabulary=vocabulary,
        lineage=meta.get("lineage"),
        run=meta.get("run"),
        version=int(data["version"]),
        integrity=integrity,
    )


def _check_version(data: dict) -> None:
    from repro.model.serialize import READABLE_VERSIONS

    if "version" not in data:
        raise ValueError("not a repro snapshot (no version field)")
    v = int(data["version"])
    if v not in READABLE_VERSIONS:
        raise ValueError(
            f"snapshot format version {v} not supported (this build reads "
            f"versions {', '.join(map(str, READABLE_VERSIONS))})"
        )
