"""Model checkpointing: save/load trained LDA state.

Algorithm 1 ends by collecting the trained model from the devices (lines
17-20); a real deployment then persists it.  Snapshots are a single
``.npz`` with the corpus-independent model (phi, hyper-parameters) plus,
optionally, the full chunked training state so a run can be resumed
exactly (topic assignments, chunk boundaries).

The file format is versioned; loaders reject unknown versions and
corrupted invariants rather than silently mis-training.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.model import ChunkState, LdaState
from repro.corpus.document import Corpus
from repro.corpus.encoding import encode_chunk
from repro.corpus.partition import ChunkSpec

FORMAT_VERSION = 1


def save_model(state: LdaState, path: str | Path) -> None:
    """Persist the trained model (phi + hyper-parameters) to ``path``.

    This is the *inference* artifact: enough to compute p*(k) for new
    documents (see :mod:`repro.core.inference`), not enough to resume
    training — use :func:`save_checkpoint` for that.
    """
    np.savez_compressed(
        Path(path),
        version=FORMAT_VERSION,
        kind="model",
        phi=state.phi,
        topic_totals=state.topic_totals,
        alpha=state.alpha,
        beta=state.beta,
        num_topics=state.num_topics,
        num_words=state.num_words,
    )


def load_model(path: str | Path) -> dict:
    """Load a model artifact; returns a dict of arrays and scalars.

    Raises
    ------
    ValueError
        On version mismatch, wrong artifact kind, or violated invariants.
    """
    with np.load(Path(path), allow_pickle=False) as z:
        data = {k: z[k] for k in z.files}
    _check_version(data)
    if str(data["kind"]) != "model":
        raise ValueError(f"not a model artifact: kind={data['kind']}")
    phi = data["phi"]
    totals = data["topic_totals"]
    if phi.ndim != 2 or phi.shape[0] != int(data["num_topics"]):
        raise ValueError("model snapshot has inconsistent phi shape")
    if not np.array_equal(phi.sum(axis=1), totals):
        raise ValueError("model snapshot corrupted: totals do not match phi")
    if np.any(phi < 0):
        raise ValueError("model snapshot corrupted: negative counts")
    return {
        "phi": phi,
        "topic_totals": totals,
        "alpha": float(data["alpha"]),
        "beta": float(data["beta"]),
        "num_topics": int(data["num_topics"]),
        "num_words": int(data["num_words"]),
    }


def save_checkpoint(state: LdaState, path: str | Path) -> None:
    """Persist the complete training state (resumable)."""
    payload: dict[str, np.ndarray | int | float | str] = {
        "version": FORMAT_VERSION,
        "kind": "checkpoint",
        "phi": state.phi,
        "topic_totals": state.topic_totals,
        "alpha": state.alpha,
        "beta": state.beta,
        "num_topics": state.num_topics,
        "num_words": state.num_words,
        "num_chunks": len(state.chunks),
    }
    for i, cs in enumerate(state.chunks):
        spec = cs.chunk.spec
        payload[f"chunk{i}_topics"] = cs.topics
        payload[f"chunk{i}_bounds"] = np.array(
            [spec.chunk_id, spec.doc_lo, spec.doc_hi, spec.token_lo, spec.token_hi],
            dtype=np.int64,
        )
    np.savez_compressed(Path(path), **payload)


def load_checkpoint(path: str | Path, corpus: Corpus) -> LdaState:
    """Rebuild a resumable :class:`LdaState` from a checkpoint + corpus.

    The corpus must be the one the checkpoint was trained on (token
    counts per chunk are verified).
    """
    with np.load(Path(path), allow_pickle=False) as z:
        data = {k: z[k] for k in z.files}
    _check_version(data)
    if str(data["kind"]) != "checkpoint":
        raise ValueError(f"not a checkpoint artifact: kind={data['kind']}")
    if int(data["num_words"]) != corpus.num_words:
        raise ValueError(
            f"checkpoint was trained on V={int(data['num_words'])}, "
            f"corpus has V={corpus.num_words}"
        )
    num_topics = int(data["num_topics"])
    chunks: list[ChunkState] = []
    for i in range(int(data["num_chunks"])):
        cid, doc_lo, doc_hi, tok_lo, tok_hi = data[f"chunk{i}_bounds"]
        spec = ChunkSpec(int(cid), int(doc_lo), int(doc_hi), int(tok_lo), int(tok_hi))
        dc = encode_chunk(corpus, spec)
        topics = data[f"chunk{i}_topics"]
        if topics.shape[0] != dc.num_tokens:
            raise ValueError(
                f"chunk {i}: checkpoint has {topics.shape[0]} topics, "
                f"corpus chunk has {dc.num_tokens} tokens — wrong corpus?"
            )
        cs = ChunkState(chunk=dc, topics=topics, theta=None)  # type: ignore[arg-type]
        cs.rebuild_theta(num_topics)
        chunks.append(cs)
    state = LdaState(
        num_topics=num_topics,
        num_words=corpus.num_words,
        alpha=float(data["alpha"]),
        beta=float(data["beta"]),
        chunks=chunks,
    )
    # The rebuilt phi must match the stored one, or the corpus differs.
    if not np.array_equal(state.phi, data["phi"]):
        raise ValueError("checkpoint does not match this corpus (phi mismatch)")
    state.validate()
    return state


def _check_version(data: dict) -> None:
    if "version" not in data:
        raise ValueError("not a repro snapshot (no version field)")
    v = int(data["version"])
    if v != FORMAT_VERSION:
        raise ValueError(
            f"snapshot format version {v} not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
