"""Model checkpointing: save/load trained LDA state.

Algorithm 1 ends by collecting the trained model from the devices (lines
17-20); a real deployment then persists it.  Snapshots are a single
``.npz`` with the corpus-independent model (phi, hyper-parameters) plus,
optionally, the full chunked training state so a run can be resumed
exactly (topic assignments, chunk boundaries).

The file format is versioned; loaders reject unknown versions and
corrupted invariants rather than silently mis-training.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np

from repro.core.model import ChunkState, LdaState
from repro.corpus.document import Corpus
from repro.corpus.encoding import encode_chunk
from repro.corpus.partition import ChunkSpec

#: Version written for checkpoint artifacts.  The layout is unchanged
#: since v1, so checkpoints keep writing 1 — older builds stay able to
#: read them.  Model artifacts are owned by :mod:`repro.model.serialize`
#: (schema v2 with a v1 compat loader); its READABLE_VERSIONS is shared
#: here so a v2 model file handed to ``load_checkpoint`` reports "not a
#: checkpoint", not a version error.
FORMAT_VERSION = 1


def save_model(state: LdaState, path: str | Path) -> None:
    """Deprecated: persist the trained model to ``path``.

    Shim over the :class:`~repro.model.TopicModel` artifact (writes the
    current schema-v2 format).  Use ``trainer.export_model().save(path)``
    instead.
    """
    warnings.warn(
        "repro.core.snapshot.save_model is deprecated; use "
        "trainer.export_model().save(path) (repro.model.TopicModel)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.model import TopicModel

    TopicModel.from_state(state).save(path)


def load_model(path: str | Path) -> dict:
    """Deprecated: load a model artifact as a dict of arrays and scalars.

    Shim over :meth:`repro.model.TopicModel.load` (reads schema v1 and
    v2); returns the legacy key-checked dict.  Use ``TopicModel.load``
    directly for the typed artifact.

    Raises
    ------
    ValueError
        On version mismatch, wrong artifact kind, or violated invariants.
    """
    warnings.warn(
        "repro.core.snapshot.load_model is deprecated; use "
        "repro.model.TopicModel.load(path)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.model import TopicModel

    m = TopicModel.load(path)
    # Writable copies: the artifact's arrays are frozen, but this legacy
    # surface always handed out arrays the caller could mutate.
    return {
        "phi": np.array(m.phi),
        "topic_totals": np.array(m.topic_totals),
        "alpha": m.alpha,
        "beta": m.beta,
        "num_topics": m.num_topics,
        "num_words": m.num_words,
    }


def save_checkpoint(state: LdaState, path: str | Path) -> None:
    """Persist the complete training state (resumable)."""
    payload: dict[str, np.ndarray | int | float | str] = {
        "version": FORMAT_VERSION,
        "kind": "checkpoint",
        "phi": state.phi,
        "topic_totals": state.topic_totals,
        "alpha": state.alpha,
        "beta": state.beta,
        "num_topics": state.num_topics,
        "num_words": state.num_words,
        "num_chunks": len(state.chunks),
    }
    for i, cs in enumerate(state.chunks):
        spec = cs.chunk.spec
        payload[f"chunk{i}_topics"] = cs.topics
        payload[f"chunk{i}_bounds"] = np.array(
            [spec.chunk_id, spec.doc_lo, spec.doc_hi, spec.token_lo, spec.token_hi],
            dtype=np.int64,
        )
    np.savez_compressed(Path(path), **payload)


def load_checkpoint(path: str | Path, corpus: Corpus) -> LdaState:
    """Rebuild a resumable :class:`LdaState` from a checkpoint + corpus.

    The corpus must be the one the checkpoint was trained on (token
    counts per chunk are verified).
    """
    with np.load(Path(path), allow_pickle=False) as z:
        data = {k: z[k] for k in z.files}
    _check_version(data)
    if str(data["kind"]) != "checkpoint":
        raise ValueError(f"not a checkpoint artifact: kind={data['kind']}")
    if int(data["num_words"]) != corpus.num_words:
        raise ValueError(
            f"checkpoint was trained on V={int(data['num_words'])}, "
            f"corpus has V={corpus.num_words}"
        )
    num_topics = int(data["num_topics"])
    chunks: list[ChunkState] = []
    for i in range(int(data["num_chunks"])):
        cid, doc_lo, doc_hi, tok_lo, tok_hi = data[f"chunk{i}_bounds"]
        spec = ChunkSpec(int(cid), int(doc_lo), int(doc_hi), int(tok_lo), int(tok_hi))
        dc = encode_chunk(corpus, spec)
        topics = data[f"chunk{i}_topics"]
        if topics.shape[0] != dc.num_tokens:
            raise ValueError(
                f"chunk {i}: checkpoint has {topics.shape[0]} topics, "
                f"corpus chunk has {dc.num_tokens} tokens — wrong corpus?"
            )
        cs = ChunkState(chunk=dc, topics=topics, theta=None)  # type: ignore[arg-type]
        cs.rebuild_theta(num_topics)
        chunks.append(cs)
    state = LdaState(
        num_topics=num_topics,
        num_words=corpus.num_words,
        alpha=float(data["alpha"]),
        beta=float(data["beta"]),
        chunks=chunks,
    )
    # The rebuilt phi must match the stored one, or the corpus differs.
    if not np.array_equal(state.phi, data["phi"]):
        raise ValueError("checkpoint does not match this corpus (phi mismatch)")
    state.validate()
    return state


def _check_version(data: dict) -> None:
    from repro.model.serialize import READABLE_VERSIONS

    if "version" not in data:
        raise ValueError("not a repro snapshot (no version field)")
    v = int(data["version"])
    if v not in READABLE_VERSIONS:
        raise ValueError(
            f"snapshot format version {v} not supported (this build reads "
            f"versions {', '.join(map(str, READABLE_VERSIONS))})"
        )
