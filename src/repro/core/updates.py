"""Model update kernels (Section 6.2).

After sampling a chunk, two kernels bring the device replicas back in
sync with the new assignments:

- **update-phi**: phi is dense, so the update is a pair of data-local
  atomic adds per changed token (decrement the old topic's count,
  increment the new one).  The word-first token order gives the atomics
  the locality the paper relies on ("atomic functions that have good data
  locality show good performance").
- **update-theta**: theta is CSR and cannot be atomically updated in
  place.  The paper scatters each document's topics into a dense row
  (using the precomputed document-word map), then compacts the dense row
  back to CSR with a prefix sum.  The vectorised equivalent is a keyed
  histogram + CSR rebuild (:func:`repro.core.sparse.from_assignments`).

Updating phi *first* lets the multi-GPU phi synchronization start while
theta updates are still running — the scheduler exploits that ordering.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import ChunkState
from repro.core.sparse import CsrCounts


def apply_phi_update(
    phi: np.ndarray,
    topic_totals: np.ndarray,
    words: np.ndarray,
    z_old: np.ndarray,
    z_new: np.ndarray,
    accum_phi: np.ndarray | None = None,
    accum_totals: np.ndarray | None = None,
) -> int:
    """In-place phi/topic_totals update; returns the changed-token count.

    Only tokens whose topic actually changed touch memory (an unchanged
    token's decrement and increment cancel).

    ``accum_phi``/``accum_totals``, when given, receive the *same* signed
    update a second time — the pre-reduced per-worker delta of the
    Section 6.2 sync path: a worker folds every chunk's updates into one
    accumulator so the master's merge is one add per worker instead of
    one subtract-and-add per device replica.  The changed-token masks
    are computed once and shared between the two targets.
    """
    if not (words.shape == z_old.shape == z_new.shape):
        raise ValueError("words/z_old/z_new must have identical shapes")
    zo = z_old.astype(np.int64)
    zn = z_new.astype(np.int64)
    changed = zo != zn
    if not np.any(changed):
        return 0
    w = words.astype(np.int64)[changed]
    zo = zo[changed]
    zn = zn[changed]
    k = topic_totals.shape[0]
    dec = np.bincount(zo, minlength=k)
    inc = np.bincount(zn, minlength=k)
    np.subtract.at(phi, (zo, w), 1)
    np.add.at(phi, (zn, w), 1)
    topic_totals -= dec.astype(topic_totals.dtype)
    topic_totals += inc.astype(topic_totals.dtype)
    if accum_phi is not None:
        np.subtract.at(accum_phi, (zo, w), 1)
        np.add.at(accum_phi, (zn, w), 1)
    if accum_totals is not None:
        accum_totals -= dec.astype(accum_totals.dtype)
        accum_totals += inc.astype(accum_totals.dtype)
    return int(changed.sum())


def update_theta(
    chunk_state: ChunkState, num_topics: int, compress: bool = True
) -> CsrCounts:
    """Rebuild the chunk's theta from its current assignments.

    Functional equivalent of the dense-scatter + prefix-sum-compaction
    kernel; returns the new CSR (also stored on the chunk state).
    """
    return chunk_state.rebuild_theta(num_topics, compress)


def verify_phi_consistency(
    phi: np.ndarray,
    topic_totals: np.ndarray,
    expected_tokens: int | None = None,
) -> None:
    """Raise if phi has negative counts or totals are out of sync.

    Called by tests and (cheaply) by the trainer in debug mode after
    every synchronization — a negative count means an update was applied
    twice or a sync reconciled incorrectly.
    """
    if np.any(phi < 0):
        bad = np.argwhere(phi < 0)[0]
        raise AssertionError(
            f"negative phi count at (topic={bad[0]}, word={bad[1]})"
        )
    actual = phi.sum(axis=1, dtype=np.int64)
    if not np.array_equal(actual, topic_totals.astype(np.int64)):
        raise AssertionError("topic_totals inconsistent with phi")
    if expected_tokens is not None:
        total = int(actual.sum())
        if total != expected_tokens:
            raise AssertionError(
                f"phi accounts for {total} tokens, expected {expected_tokens}"
            )
