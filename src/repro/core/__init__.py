"""Core CuLDA_CGS implementation: the paper's primary contribution.

Public surface:

- :class:`~repro.core.config.TrainerConfig` — run configuration;
- :class:`~repro.core.trainer.CuLdaTrainer` — end-to-end training;
- :class:`~repro.core.model.LdaState` — model state and invariants;
- :class:`~repro.core.tree.IndexTree` — Figure 5 tree-based sampling;
- :func:`~repro.core.sampler.sample_chunk` — the Algorithm 2 kernel;
- :func:`~repro.core.likelihood.log_likelihood_per_token` — Figure 8 metric.
"""

from repro.core.config import TrainerConfig
from repro.core.inference import FoldInSampler
from repro.core.likelihood import log_likelihood, log_likelihood_per_token, perplexity
from repro.core.model import ChunkState, LdaState
from repro.core.rng import RngPool
from repro.core.snapshot import (
    CheckpointBundle,
    load_checkpoint,
    load_checkpoint_full,
    load_model,
    run_info,
    save_checkpoint,
    save_model,
)
from repro.core.sampler import SampleResult, conditional_distribution, sample_chunk
from repro.core.trainer import CuLdaTrainer, IterationRecord
from repro.core.tree import IndexTree, cdf_sample

__all__ = [
    "TrainerConfig",
    "CuLdaTrainer",
    "IterationRecord",
    "LdaState",
    "ChunkState",
    "RngPool",
    "FoldInSampler",
    "save_model",
    "load_model",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_full",
    "CheckpointBundle",
    "run_info",
    "IndexTree",
    "cdf_sample",
    "sample_chunk",
    "SampleResult",
    "conditional_distribution",
    "log_likelihood",
    "log_likelihood_per_token",
    "perplexity",
]
