"""Fold-in inference: topic mixtures for documents unseen at training.

The trained artifact is the topic-word matrix phi; downstream use
(search, recommendation, the "online service" scenario of the paper's
abstract) needs theta for *new* documents.  The standard estimator is
fold-in Gibbs sampling: hold phi fixed and run CGS over only the new
document's assignments,

    p(k) ~ (theta_d[k] + alpha) * (phi[k, v] + beta) / (N_k + beta * V)

then average the theta counts over the last sweeps.  Because phi is
frozen, each document folds in independently — embarrassingly parallel,
exactly the workload CuLDA's per-warp samplers would run in deployment.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.document import Corpus
from repro.core.model import LdaState


class FoldInSampler:
    """Infers topic mixtures for new documents against a frozen model.

    Parameters
    ----------
    phi / topic_totals:
        The trained topic-word counts and their row sums.
    alpha, beta:
        Hyper-parameters (use the training values).
    """

    def __init__(
        self,
        phi: np.ndarray,
        topic_totals: np.ndarray,
        alpha: float,
        beta: float,
    ):
        if phi.ndim != 2:
            raise ValueError("phi must be 2-D (K x V)")
        if topic_totals.shape != (phi.shape[0],):
            raise ValueError("topic_totals must have length K")
        if alpha <= 0 or beta <= 0:
            raise ValueError("hyper-parameters must be positive")
        if np.any(phi < 0):
            raise ValueError("phi must be non-negative")
        self.phi = phi.astype(np.float64)
        self.alpha = alpha
        self.beta = beta
        self.num_topics, self.num_words = phi.shape
        # phi never changes during fold-in: precompute p*(k, v) once.
        denom = topic_totals.astype(np.float64) + beta * self.num_words
        self._p_star = (self.phi + beta) / denom[:, None]

    @classmethod
    def from_state(cls, state: LdaState) -> FoldInSampler:
        """Build from a trained :class:`LdaState`."""
        return cls(state.phi, state.topic_totals, state.alpha, state.beta)

    def infer_document(
        self,
        word_ids: np.ndarray,
        num_sweeps: int = 30,
        burn_in: int = 10,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Posterior mean topic mixture of one document.

        Runs ``num_sweeps`` Gibbs sweeps over the document's assignments
        (phi frozen), averaging theta over the post-burn-in sweeps.
        Returns a length-K probability vector.
        """
        if num_sweeps <= burn_in:
            raise ValueError("num_sweeps must exceed burn_in")
        w = np.asarray(word_ids, dtype=np.int64)
        if w.size == 0:
            # No evidence: the prior mean.
            return np.full(self.num_topics, 1.0 / self.num_topics)
        if w.min() < 0 or w.max() >= self.num_words:
            raise ValueError("word id out of the trained vocabulary")
        rng = rng or np.random.default_rng(0)
        k = self.num_topics
        z = rng.integers(0, k, size=w.size)
        theta = np.bincount(z, minlength=k).astype(np.float64)
        acc = np.zeros(k, dtype=np.float64)
        p_star_cols = self._p_star[:, w]  # K x L gather, reused all sweeps
        for sweep in range(num_sweeps):
            for i in range(w.size):
                theta[z[i]] -= 1.0
                p = (theta + self.alpha) * p_star_cols[:, i]
                cdf = np.cumsum(p)
                z[i] = min(
                    int(np.searchsorted(cdf, rng.random() * cdf[-1], side="right")),
                    k - 1,
                )
                theta[z[i]] += 1.0
            if sweep >= burn_in:
                acc += theta
        mix = acc + self.alpha * (num_sweeps - burn_in)
        return mix / mix.sum()

    def infer_corpus(
        self,
        corpus: Corpus,
        num_sweeps: int = 30,
        burn_in: int = 10,
        seed: int = 0,
    ) -> np.ndarray:
        """Topic mixtures for every document of ``corpus`` (D x K)."""
        if corpus.num_words > self.num_words:
            raise ValueError(
                f"corpus vocabulary ({corpus.num_words}) exceeds the "
                f"trained vocabulary ({self.num_words})"
            )
        out = np.empty((corpus.num_docs, self.num_topics), dtype=np.float64)
        root = np.random.SeedSequence(seed)
        seeds = root.spawn(corpus.num_docs)
        for d in range(corpus.num_docs):
            out[d] = self.infer_document(
                corpus.document(d).word_ids,
                num_sweeps=num_sweeps,
                burn_in=burn_in,
                rng=np.random.default_rng(seeds[d]),
            )
        return out

    def log_predictive(
        self, word_ids: np.ndarray, mixture: np.ndarray
    ) -> float:
        """Mean log p(w | mixture, phi) of a token sequence.

        Used by held-out evaluation: score the second half of a document
        under the mixture inferred from the first half.
        """
        w = np.asarray(word_ids, dtype=np.int64)
        if w.size == 0:
            raise ValueError("cannot score an empty token sequence")
        if mixture.shape != (self.num_topics,):
            raise ValueError("mixture must be a length-K vector")
        if not np.isclose(mixture.sum(), 1.0, atol=1e-6) or np.any(mixture < 0):
            raise ValueError("mixture must be a probability vector")
        token_probs = mixture @ self._p_star[:, w]
        return float(np.log(np.maximum(token_probs, 1e-300)).mean())
