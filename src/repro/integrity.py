"""Artifact integrity: content digests for models and checkpoints.

Durability comes from verifying data at every hand-off, not from
assuming writes succeeded.  Every ``.npz`` the repo writes (model
artifacts, :mod:`repro.model.serialize`; checkpoints,
:mod:`repro.core.snapshot`) embeds a sha256 digest over its payload
arrays inside ``metadata_json``; loaders recompute and compare, so a
truncated or bit-flipped file is a typed ``ValueError`` at load time,
never a silently mis-served model.  Files written before digests existed
still load — their metadata records ``{"status": "unverified"}`` so the
gap is visible, not papered over.

The digest is canonical and load-stable: arrays are hashed in sorted key
order, each as ``name NUL dtype NUL shape-bytes data-bytes`` with the
data forced C-contiguous, and ``metadata_json`` itself is excluded
(it is where the digest lives).  ``np.savez``/``np.load`` round-trip
array bytes exactly, so save-time and load-time digests agree.

:func:`verify_artifact` checks a file **offline** — no corpus, no model
construction — which is what ``repro verify-artifact PATH`` and the
:class:`~repro.api.callbacks.Checkpointer`'s verify-before-prune use.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
import zlib
from collections.abc import Mapping
from pathlib import Path

import numpy as np

__all__ = [
    "DIGEST_ALGORITHM",
    "digest_arrays",
    "integrity_record",
    "verify_payload",
    "verify_artifact",
]

DIGEST_ALGORITHM = "sha256"

#: Payload keys excluded from the digest: ``metadata_json`` carries the
#: digest itself, so including it would be circular.
EXCLUDED_KEYS = ("metadata_json",)


def digest_arrays(arrays: Mapping[str, object]) -> str:
    """Canonical sha256 over a savez payload (sorted keys, raw bytes)."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        if name in EXCLUDED_KEYS:
            continue
        arr = np.asarray(arrays[name])
        h.update(name.encode())
        h.update(b"\0")
        h.update(arr.dtype.str.encode("ascii"))
        h.update(b"\0")
        h.update(np.asarray(arr.shape, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def integrity_record(arrays: Mapping[str, object]) -> dict:
    """The ``metadata_json["integrity"]`` entry written at save time."""
    return {"algorithm": DIGEST_ALGORITHM, "digest": digest_arrays(arrays)}


def verify_payload(arrays: Mapping[str, object], metadata: dict) -> dict:
    """Check a loaded payload against the digest its metadata records.

    Returns the integrity record to carry forward in the loaded
    object's metadata: the stored record plus ``status: "verified"``,
    or ``{"status": "unverified"}`` for pre-digest files.

    Raises
    ------
    ValueError
        Digest mismatch — the file's bytes are not the bytes that were
        written ("corrupted").
    """
    stored = metadata.get("integrity") if isinstance(metadata, dict) else None
    if not isinstance(stored, dict) or "digest" not in stored:
        return {"status": "unverified"}
    recomputed = digest_arrays(arrays)
    if recomputed != stored["digest"]:
        raise ValueError(
            f"integrity digest mismatch: stored "
            f"{stored['digest'][:12]}..., recomputed {recomputed[:12]}... "
            f"— the artifact is corrupted"
        )
    return {**stored, "status": "verified"}


def verify_artifact(path: str | Path) -> dict:
    """Offline integrity check of any repro ``.npz`` (model or checkpoint).

    Needs neither a corpus nor a model build: reads the file, recomputes
    the payload digest, and compares it against the one recorded in
    ``metadata_json``.  Returns a JSON-ready report::

        {"path", "kind", "version", "status", "digest",
         "stored_digest", "detail"}

    ``status`` is ``"verified"`` (digests match), ``"unverified"``
    (pre-digest file, nothing to compare) or ``"corrupt"`` (mismatch, or
    the file is not a readable repro artifact at all).

    Covers every durable file the repo writes: model artifacts, v1/v2
    checkpoints and corpus-store shards all go through the npz payload
    digest; a ``.json`` path is treated as a corpus-store manifest and
    checked against its own ``manifest_sha256``.
    """
    path = Path(path)
    report: dict = {"path": str(path), "kind": None, "version": None}
    if path.suffix == ".json":
        return _verify_manifest(path, report)
    try:
        with np.load(path, allow_pickle=False) as z:
            data = {k: z[k] for k in z.files}
    except (OSError, ValueError, zipfile.BadZipFile, zlib.error) as exc:
        # BadZipFile/zlib.error: a flipped byte often trips the npz
        # container's own CRC or deflate stream before the payload
        # digest gets a chance.
        report.update(status="corrupt", detail=f"unreadable: {exc}")
        return report
    if "version" in data:
        report["version"] = int(data["version"])
    if "kind" in data:
        report["kind"] = str(data["kind"])
    metadata: dict = {}
    if "metadata_json" in data:
        try:
            metadata = json.loads(str(data["metadata_json"]))
        except json.JSONDecodeError as exc:
            report.update(status="corrupt", detail=f"bad metadata: {exc}")
            return report
    report["digest"] = digest_arrays(data)
    stored = metadata.get("integrity") if isinstance(metadata, dict) else None
    if not isinstance(stored, dict) or "digest" not in stored:
        report.update(
            status="unverified",
            stored_digest=None,
            detail="no digest recorded (written before integrity existed)",
        )
        return report
    report["stored_digest"] = stored["digest"]
    if report["digest"] != stored["digest"]:
        report.update(status="corrupt", detail="payload digest mismatch")
    else:
        report.update(status="verified", detail="payload digest matches")
    return report


def _verify_manifest(path: Path, report: dict) -> dict:
    """Offline check of a corpus-store ``manifest.json``.

    Verifies only the manifest file itself (its self-digest); shard
    payloads are separate artifacts with their own reports, and the
    whole-store view (shards against manifest entries, quarantine) is
    ``repro corpus verify``.
    """
    # Imported lazily: the store module depends on this one.
    from repro.corpus.store import (
        ManifestCorrupt,
        StoreIncomplete,
        load_manifest,
        manifest_digest,
    )

    try:
        manifest = load_manifest(path.parent, allow_incomplete=True)
    except (FileNotFoundError, ManifestCorrupt, StoreIncomplete) as exc:
        report.update(status="corrupt", detail=str(exc))
        return report
    report.update(
        kind=str(manifest.get("kind")),
        version=manifest.get("schema_version"),
        digest=manifest_digest(manifest),
        stored_digest=manifest.get("manifest_sha256"),
        status="verified",
        detail="manifest digest matches",
    )
    return report
