"""LDA*-style distributed baseline (Yu et al. [34]).

LDA* is the paper's distributed comparison point: CPU workers behind a
parameter server, connected by 10 Gb/s Ethernet.  The paper's argument
(Sections 3.2, 7.2) is that such systems are **network bound**: every
iteration the workers must push their model deltas to the parameter
server and pull the merged model back, and 10 GbE is two orders of
magnitude slower than on-node interconnects.

The simulation runs the *same functional CGS kernel* as the core system
partitioned over ``num_workers`` chunks (so convergence is genuine), and
charges per iteration:

- compute: the Table 1 roofline cost on each worker's CPU, with the
  cache-factor degradation of Section 3.2;
- network: sparse delta push + dense model pull through the parameter
  server's shared link — the serialisation point that caps scaling.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TrainerConfig
from repro.core.costs import SamplingStats, int_bytes, sampling_cost, tree_depth_for
from repro.core.likelihood import log_likelihood_per_token
from repro.core.model import LdaState
from repro.core.rng import RngPool
from repro.core.sampler import sample_chunk
from repro.core.trainer import IterationRecord
from repro.core.updates import apply_phi_update
from repro.corpus.document import Corpus
from repro.corpus.partition import partition_by_tokens
from repro.gpusim.cache import cpu_cache_bandwidth_factor
from repro.gpusim.clock import cpu_kernel_time
from repro.gpusim.interconnect import ETHERNET_10G, Link
from repro.gpusim.platform import XEON_E5_2650_V3
from repro.gpusim.spec import CpuSpec
from repro.perf import Workspace


class LdaStarTrainer:
    """Parameter-server distributed LDA simulation.

    Parameters
    ----------
    num_workers:
        Machines in the cluster (the paper's PubMed comparison uses 20).
    network:
        The shared link to the parameter server (default 10 GbE).
    """

    DESCRIPTION = "LDA*-style distributed parameter-server baseline (10 GbE)"

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        num_workers: int = 20,
        cpu: CpuSpec = XEON_E5_2650_V3,
        network: Link = ETHERNET_10G,
        alpha: float | None = None,
        beta: float | None = None,
        seed: int = 0,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.corpus = corpus
        self.num_workers = num_workers
        self.cpu = cpu
        self.network = network
        # Reuse the core chunked state: one chunk per worker.
        self.config = TrainerConfig(
            num_topics=num_topics,
            alpha=alpha,
            beta=beta,
            num_gpus=num_workers,  # worker count plays the role of G
            chunks_per_gpu=1,
            compress=False,  # workers use plain 32-bit data
            seed=seed,
        )
        specs = partition_by_tokens(corpus, num_workers)
        self.state = LdaState.initialize(corpus, self.config, specs)
        self.pool = RngPool(seed)
        self.history: list[IterationRecord] = []
        self._sim_time = 0.0
        self._iterations_done = 0
        # shared kernel arena for all simulated workers' chunk passes
        self._workspace = Workspace()

    def _worker_seconds(self, stats: SamplingStats) -> float:
        """Roofline time of one worker's chunk pass on its CPU."""
        working_set = (
            self.state.phi.nbytes
            + stats.sum_kd * 3 * int_bytes(False)
            + stats.num_tokens * 8
        )
        factor = cpu_cache_bandwidth_factor(self.cpu, working_set)
        cost = sampling_cost(stats, compress=False, share_p2_tree=False)
        return cpu_kernel_time(self.cpu, cost.scaled(1.0 / min(factor, 8.0)))

    def _network_seconds(self, changed_tokens: int) -> float:
        """PS sync: sparse delta pushes + dense model pulls, shared link.

        Every changed token contributes two (k, v, delta) triples; every
        worker also pulls the merged dense phi.  All of it serialises
        through the parameter server's link.
        """
        delta_bytes = changed_tokens * 2 * 12  # (int32 k, int32 v, int32 d)
        pull_bytes = self.num_workers * self.state.phi.nbytes
        return self.network.transfer_time(delta_bytes + pull_bytes)

    def train(
        self, num_iterations: int, compute_likelihood_every: int = 1
    ) -> list[IterationRecord]:
        """Run iterations on the simulated cluster clock."""
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        total_tokens = self.state.num_tokens
        for _ in range(num_iterations):
            it = self._iterations_done
            phi_ref = self.state.phi.copy()
            totals_ref = self.state.topic_totals.copy()
            worker_times = []
            changed_total = 0
            sum_kd = 0
            deltas = np.zeros_like(self.state.phi, dtype=np.int64)
            for w, cs in enumerate(self.state.chunks):
                phi_w = phi_ref.copy()
                totals_w = totals_ref.copy()
                rng = self.pool.chunk_stream(it, w)
                result = sample_chunk(
                    cs.chunk, cs.topics, cs.theta, phi_w, totals_w,
                    self.config.effective_alpha, self.config.effective_beta, rng,
                    workspace=self._workspace,
                )
                changed = apply_phi_update(
                    phi_w, totals_w, cs.chunk.token_words, cs.topics,
                    result.new_topics,
                )
                cs.topics = result.new_topics
                cs.rebuild_theta(self.config.num_topics, compress=False)
                deltas += phi_w.astype(np.int64) - phi_ref.astype(np.int64)
                worker_times.append(self._worker_seconds(result.stats))
                changed_total += changed
                sum_kd += result.stats.sum_kd
            self.state.phi[...] = (phi_ref.astype(np.int64) + deltas).astype(
                self.state.phi.dtype
            )
            self.state.topic_totals[...] = self.state.phi.sum(axis=1, dtype=np.int64)

            dur = max(worker_times) + self._network_seconds(changed_total)
            self._sim_time += dur
            ll = None
            if compute_likelihood_every and (it + 1) % compute_likelihood_every == 0:
                ll = log_likelihood_per_token(self.state)
            self.history.append(
                IterationRecord(
                    iteration=it,
                    sim_seconds=dur,
                    cumulative_seconds=self._sim_time,
                    tokens_per_sec=total_tokens / dur,
                    log_likelihood_per_token=ll,
                    mean_kd=sum_kd / total_tokens if total_tokens else 0.0,
                    p1_fraction=0.0,
                    changed_fraction=changed_total / total_tokens if total_tokens else 0.0,
                )
            )
            self._iterations_done += 1
        return self.history

    def average_tokens_per_sec(self, first_n: int | None = None) -> float:
        records = self.history if first_n is None else self.history[:first_n]
        if not records:
            raise ValueError("no iterations recorded yet")
        return float(np.mean([r.tokens_per_sec for r in records]))

    def describe(self) -> dict:
        """Identity and effective configuration (unified API contract)."""
        return {
            "description": self.DESCRIPTION,
            "num_topics": self.config.num_topics,
            "num_workers": self.num_workers,
            "alpha": self.config.effective_alpha,
            "beta": self.config.effective_beta,
            "network": self.network.name,
        }

    @property
    def tree_depth(self) -> int:  # pragma: no cover - convenience
        return tree_depth_for(self.config.num_topics)
