"""LDA*-style distributed baseline (Yu et al. [34]).

LDA* is the paper's distributed comparison point: CPU workers behind a
parameter server, connected by 10 Gb/s Ethernet.  The paper's argument
(Sections 3.2, 7.2) is that such systems are **network bound**: every
iteration the workers must push their model deltas to the parameter
server and pull the merged model back, and 10 GbE is two orders of
magnitude slower than on-node interconnects.

The simulation runs the *same functional CGS kernel* as the core system
partitioned over ``num_workers`` chunks (so convergence is genuine), and
charges per iteration:

- compute: the Table 1 roofline cost on each worker's CPU, with the
  cache-factor degradation of Section 3.2;
- network: sparse delta push + dense model pull through the parameter
  server's shared link — the serialisation point that caps scaling.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TrainerConfig
from repro.core.costs import SamplingStats, int_bytes, sampling_cost, tree_depth_for
from repro.core.likelihood import (
    ensure_finite,
    likelihood_due,
    log_likelihood_per_token,
)
from repro.core.model import LdaState
from repro.core.rng import RngPool
from repro.core.sampler import sample_chunk
from repro.core.trainer import IterationRecord
from repro.core.updates import apply_phi_update
from repro.corpus.document import Corpus
from repro.corpus.partition import partition_by_tokens
from repro.gpusim.cache import cpu_cache_bandwidth_factor
from repro.gpusim.clock import cpu_kernel_time
from repro.gpusim.interconnect import ETHERNET_10G, Link
from repro.gpusim.platform import XEON_E5_2650_V3
from repro.gpusim.spec import CpuSpec
from repro.perf import Workspace


class LdaStarTrainer:
    """Parameter-server distributed LDA simulation.

    Parameters
    ----------
    num_workers:
        Machines in the cluster (the paper's PubMed comparison uses 20).
    network:
        The shared link to the parameter server (default 10 GbE).
    """

    DESCRIPTION = "LDA*-style distributed parameter-server baseline (10 GbE)"

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        num_workers: int = 20,
        cpu: CpuSpec = XEON_E5_2650_V3,
        network: Link = ETHERNET_10G,
        alpha: float | None = None,
        beta: float | None = None,
        seed: int = 0,
        execution: str = "serial",
        num_processes: int | None = None,
        sync_mode: str = "barrier",
        worker_affinity=None,
        recovery_retries: int = 2,
        recovery_backoff: float = 0.05,
    ):
        """``execution="process"`` runs the cluster workers' chunk passes
        on ``num_processes`` real OS workers over shared memory (see
        :mod:`repro.parallel`); draws are bit-identical to serial.

        ``sync_mode="overlap"`` pipelines the master's delta merge (the
        parameter-server push/pull) against the next iteration's
        sampling kick-off and evaluates the document-side likelihood on
        the workers — same draws, likelihoods and simulated clocks, less
        host wall-clock.  LDA*'s process engine already pre-reduces (one
        delta pair per OS worker), so there is no separate "prereduce"
        mode here.  ``worker_affinity`` pins OS workers to the given CPU
        ids round-robin.  ``recovery_retries``/``recovery_backoff``
        bound process-mode crash recovery (see docs/ROBUSTNESS.md).
        """
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if execution not in ("serial", "process"):
            raise ValueError(
                f"execution must be 'serial' or 'process', got {execution!r}"
            )
        if num_processes is not None and num_processes < 1:
            raise ValueError("num_processes must be >= 1 (or None)")
        if sync_mode not in ("barrier", "overlap"):
            raise ValueError(
                f"sync_mode must be 'barrier' or 'overlap' for LDA* "
                f"(its engine always pre-reduces), got {sync_mode!r}"
            )
        if sync_mode == "overlap" and execution != "process":
            raise ValueError(
                "sync_mode='overlap' requires execution='process'"
            )
        self.corpus = corpus
        self.num_workers = num_workers
        self.cpu = cpu
        self.network = network
        self.execution = execution
        self.num_processes = num_processes
        self.sync_mode = sync_mode
        from repro.parallel.worker import normalize_affinity

        self.worker_affinity = normalize_affinity(worker_affinity)
        # Reuse the core chunked state: one chunk per worker.
        self.config = TrainerConfig(
            num_topics=num_topics,
            alpha=alpha,
            beta=beta,
            num_gpus=num_workers,  # worker count plays the role of G
            chunks_per_gpu=1,
            compress=False,  # workers use plain 32-bit data
            seed=seed,
        )
        specs = partition_by_tokens(corpus, num_workers)
        self.state = LdaState.initialize(corpus, self.config, specs)
        self.pool = RngPool(seed)
        self.history: list[IterationRecord] = []
        self._sim_time = 0.0
        self._iterations_done = 0
        # shared kernel arena for all simulated workers' chunk passes
        self._workspace = Workspace()
        #: reused int64 delta accumulators (avoid per-iteration allocs)
        self._deltas = np.zeros_like(self.state.phi, dtype=np.int64)
        self._delta_totals = np.zeros_like(self.state.topic_totals)
        self._engine = None
        if recovery_retries < 0:
            raise ValueError("recovery_retries must be >= 0")
        if recovery_backoff < 0:
            raise ValueError("recovery_backoff must be >= 0")
        self.recovery_retries = int(recovery_retries)
        self.recovery_backoff = float(recovery_backoff)
        self._recovery_log: list[dict] = []

    def _worker_seconds(self, stats: SamplingStats) -> float:
        """Roofline time of one worker's chunk pass on its CPU."""
        working_set = (
            self.state.phi.nbytes
            + stats.sum_kd * 3 * int_bytes(False)
            + stats.num_tokens * 8
        )
        factor = cpu_cache_bandwidth_factor(self.cpu, working_set)
        cost = sampling_cost(stats, compress=False, share_p2_tree=False)
        return cpu_kernel_time(self.cpu, cost.scaled(1.0 / min(factor, 8.0)))

    def _network_seconds(self, changed_tokens: int) -> float:
        """PS sync: sparse delta pushes + dense model pulls, shared link.

        Every changed token contributes two (k, v, delta) triples; every
        worker also pulls the merged dense phi.  All of it serialises
        through the parameter server's link.
        """
        delta_bytes = changed_tokens * 2 * 12  # (int32 k, int32 v, int32 d)
        pull_bytes = self.num_workers * self.state.phi.nbytes
        return self.network.transfer_time(delta_bytes + pull_bytes)

    # -- parallel execution ---------------------------------------------------

    def _ensure_engine(self):
        """Delta-mode engine: one group per cluster worker, all sampling
        against the single shared model snapshot (the parameter-server
        pull), updates scattered into per-OS-worker delta accumulators
        (the push) — memory scales with OS workers, not cluster size."""
        if self._engine is None:
            from repro.parallel import ProcessEngine

            self._engine = ProcessEngine(
                chunks={
                    cs.chunk.spec.chunk_id: cs for cs in self.state.chunks
                },
                groups=[[w] for w in range(self.num_workers)],
                replicas=[(self.state.phi, self.state.topic_totals)],
                num_topics=self.config.num_topics,
                alpha=self.config.effective_alpha,
                beta=self.config.effective_beta,
                compress=False,
                seed=self.config.seed,
                num_workers=self.num_processes,
                mode="delta",
                worker_affinity=self.worker_affinity,
                recovery_retries=self.recovery_retries,
                recovery_backoff=self.recovery_backoff,
                recovery_log=self._recovery_log,
            )
            self._engine.start()
        return self._engine

    def close(self) -> None:
        """Shut down process-mode workers and shared memory (if any).

        A pipelined iteration left in flight by an exception is drained
        and its delta pushes merged first, so the master model stays
        consistent with the copied-back assignments.
        """
        if self._engine is not None:
            if self._engine.started and self._engine.drain() is not None:
                # Separate frame: the delta views must be dead before
                # engine.close() unmaps the arena.
                self._merge_pending_deltas()
            self._engine.close()
            self._engine = None

    def _merge_pending_deltas(self) -> None:
        for dphi, dtot in self._engine.worker_deltas():
            np.add(self.state.phi, dphi, out=self.state.phi,
                   casting="unsafe")
            self.state.topic_totals += dtot

    def __enter__(self) -> LdaStarTrainer:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- robustness ------------------------------------------------------------

    @property
    def recovery_events(self) -> list[dict]:
        """Crash-recovery events recorded so far (empty when undisturbed)."""
        return self._recovery_log

    def resume_state(self) -> dict:
        """Progress counters a resumable checkpoint must carry."""
        return {
            "iterations_done": self._iterations_done,
            "sim_time": self._sim_time,
        }

    def restore(self, state: LdaState, run: dict | None = None) -> None:
        """Adopt checkpointed state; continue bit-identically from it.

        Same contract as :meth:`repro.core.trainer.CuLdaTrainer.restore`:
        the checkpoint must come from a run with this trainer's corpus,
        worker count and seed.
        """
        if state.num_topics != self.config.num_topics:
            raise ValueError(
                f"checkpoint has {state.num_topics} topics, config "
                f"expects {self.config.num_topics}"
            )
        if len(state.chunks) != self.num_workers:
            raise ValueError(
                f"checkpoint has {len(state.chunks)} chunks, this trainer "
                f"simulates {self.num_workers} workers"
            )
        self.close()
        self.state = state
        run = run or {}
        self._iterations_done = int(run.get("iterations_done", 0))
        self._sim_time = float(run.get("sim_time", 0.0))
        self.history = []

    def _sample_workers_serial(self, it: int) -> tuple[list, int, int]:
        """All workers' chunk passes in-process against the iteration-start
        snapshot, scattering updates into the reused delta accumulators.

        ``self.state.phi``/``topic_totals`` are *read-only* during the
        loop (every worker samples against the same pulled model), so no
        per-worker replica copies are needed — the deltas alone carry the
        push half of the PS exchange.
        """
        deltas, dtot = self._deltas, self._delta_totals
        deltas[...] = 0
        dtot[...] = 0
        worker_times = []
        changed_total = 0
        sum_kd = 0
        for w, cs in enumerate(self.state.chunks):
            rng = self.pool.chunk_stream(it, w)
            result = sample_chunk(
                cs.chunk, cs.topics, cs.theta,
                self.state.phi, self.state.topic_totals,
                self.config.effective_alpha, self.config.effective_beta, rng,
                workspace=self._workspace,
            )
            changed = apply_phi_update(
                deltas, dtot, cs.chunk.token_words, cs.topics,
                result.new_topics,
            )
            cs.topics = result.new_topics
            cs.rebuild_theta(self.config.num_topics, compress=False)
            worker_times.append(self._worker_seconds(result.stats))
            changed_total += changed
            sum_kd += result.stats.sum_kd
        np.add(self.state.phi, deltas, out=self.state.phi, casting="unsafe")
        self.state.topic_totals += dtot
        return worker_times, changed_total, sum_kd

    def _dispatch_process(self, engine, it: int, want_ll: bool) -> None:
        """The PS pull + kick-off: publish the merged model, start ``it``."""
        engine.model_phi()[...] = self.state.phi
        engine.model_totals()[...] = self.state.topic_totals
        engine.dispatch_iteration(it, want_ll=want_ll)

    def _merge_process(self, engine, results) -> tuple[list, int, int]:
        """Merge the per-OS-worker delta pushes; fold worker statistics."""
        for dphi, dtot in engine.worker_deltas():
            np.add(self.state.phi, dphi, out=self.state.phi, casting="unsafe")
            self.state.topic_totals += dtot
        worker_times = []
        changed_total = 0
        sum_kd = 0
        for w in range(self.num_workers):
            r = results[w]
            worker_times.append(self._worker_seconds(r.stats))
            changed_total += r.changed
            sum_kd += r.stats.sum_kd
        return worker_times, changed_total, sum_kd

    def _assemble_likelihood(self, results) -> float:
        """Joint likelihood from worker-evaluated doc terms (see
        :func:`repro.core.likelihood.log_likelihood_from_terms`)."""
        from repro.core.likelihood import log_likelihood_from_terms

        terms = [results[w].ll_terms for w in range(self.num_workers)]
        if any(t is None for t in terms):  # pragma: no cover - mismatch
            raise RuntimeError(
                "likelihood requested but the workers were not asked "
                "for doc terms this iteration"
            )
        return log_likelihood_from_terms(self.state, terms)

    def train(
        self, num_iterations: int, compute_likelihood_every: int = 1
    ) -> list[IterationRecord]:
        """Run iterations on the simulated cluster clock.

        With ``sync_mode="overlap"`` (process execution) the next
        iteration's pull + kick-off happens immediately after the delta
        merge, so the master's likelihood assembly and record-keeping
        run while the OS workers already sample — the paper's "phi
        first" overlap applied to the parameter-server exchange.
        """
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        total_tokens = self.state.num_tokens
        process = self.execution == "process"
        pipeline = process and self.sync_mode == "overlap"
        engine = self._ensure_engine() if process else None

        def needs_ll(it: int) -> bool:
            return likelihood_due(it, compute_likelihood_every)

        inflight: int | None = None
        for n in range(num_iterations):
            it = self._iterations_done
            need_ll = needs_ll(it)
            if process:
                if inflight is None:
                    self._dispatch_process(engine, it, need_ll)
                results = engine.collect_iteration()
                inflight = None
                worker_times, changed_total, sum_kd = self._merge_process(
                    engine, results
                )
                if pipeline and n + 1 < num_iterations:
                    self._dispatch_process(engine, it + 1, needs_ll(it + 1))
                    inflight = it + 1
                ll = (
                    ensure_finite(
                        self._assemble_likelihood(results) / total_tokens,
                        iteration=it,
                    )
                    if need_ll else None
                )
            else:
                worker_times, changed_total, sum_kd = (
                    self._sample_workers_serial(it)
                )
                ll = (
                    ensure_finite(
                        log_likelihood_per_token(self.state), iteration=it
                    )
                    if need_ll else None
                )

            dur = max(worker_times) + self._network_seconds(changed_total)
            self._sim_time += dur
            self.history.append(
                IterationRecord(
                    iteration=it,
                    sim_seconds=dur,
                    cumulative_seconds=self._sim_time,
                    tokens_per_sec=total_tokens / dur,
                    log_likelihood_per_token=ll,
                    mean_kd=sum_kd / total_tokens if total_tokens else 0.0,
                    p1_fraction=0.0,
                    changed_fraction=changed_total / total_tokens if total_tokens else 0.0,
                )
            )
            self._iterations_done += 1
        return self.history

    def average_tokens_per_sec(self, first_n: int | None = None) -> float:
        records = self.history if first_n is None else self.history[:first_n]
        if not records:
            raise ValueError("no iterations recorded yet")
        return float(np.mean([r.tokens_per_sec for r in records]))

    def describe(self) -> dict:
        """Identity and effective configuration (unified API contract)."""
        return {
            "description": self.DESCRIPTION,
            "num_topics": self.config.num_topics,
            "num_workers": self.num_workers,
            "alpha": self.config.effective_alpha,
            "beta": self.config.effective_beta,
            "network": self.network.name,
            "execution": self.execution,
            "num_processes": self.num_processes,
            "sync_mode": self.sync_mode,
            "worker_affinity": self.worker_affinity,
        }

    @property
    def tree_depth(self) -> int:  # pragma: no cover - convenience
        return tree_depth_for(self.config.num_topics)
