"""Baseline LDA systems the paper compares against (Section 7.2).

- :mod:`~repro.baselines.plain_cgs` — exact sequential CGS (oracle);
- :mod:`~repro.baselines.sparselda` — Yao et al. S/Q sequential sampler;
- :mod:`~repro.baselines.alias` — Vose alias tables (MH substrate);
- :mod:`~repro.baselines.warplda` — WarpLDA-style CPU MH baseline;
- :mod:`~repro.baselines.saberlda` — SaberLDA-style GPU baseline;
- :mod:`~repro.baselines.ldastar` — LDA*-style distributed baseline.

Constructing trainers from this package directly is deprecated: the
unified registry (``repro.create_trainer("warplda", corpus, ...)``)
normalizes every baseline behind one keyword surface.  The legacy names
remain importable here behind a one-time ``DeprecationWarning``; the
implementation modules themselves (``repro.baselines.warplda`` etc.)
stay warning-free for internal use.
"""

import warnings
from importlib import import_module

from repro.baselines.alias import AliasTable, build_alias_columns
from repro.baselines.plain_cgs import PlainCgsModel

__all__ = [
    "AliasTable",
    "build_alias_columns",
    "PlainCgsSampler",
    "PlainCgsModel",
    "SparseLdaSampler",
    "WarpLdaTrainer",
    "WarpLdaConfig",
    "SaberLdaTrainer",
    "saberlda_config",
    "LdaStarTrainer",
    "LightLdaTrainer",
]

#: Deprecated package-level constructor aliases -> (module, registry name).
_DEPRECATED_ALIASES = {
    "PlainCgsSampler": ("repro.baselines.plain_cgs", "plain_cgs"),
    "SparseLdaSampler": ("repro.baselines.sparselda", "sparselda"),
    "WarpLdaTrainer": ("repro.baselines.warplda", "warplda"),
    "WarpLdaConfig": ("repro.baselines.warplda", "warplda"),
    "SaberLdaTrainer": ("repro.baselines.saberlda", "saberlda"),
    "saberlda_config": ("repro.baselines.saberlda", "saberlda"),
    "LdaStarTrainer": ("repro.baselines.ldastar", "ldastar"),
    "LightLdaTrainer": ("repro.baselines.lightlda", "lightlda"),
}

#: Names already warned about this session (warn exactly once per name).
_warned_aliases: set[str] = set()


def __getattr__(name: str):
    if name in _DEPRECATED_ALIASES:
        module, algo = _DEPRECATED_ALIASES[name]
        if name not in _warned_aliases:
            _warned_aliases.add(name)
            warnings.warn(
                f"importing {name!r} from 'repro.baselines' is deprecated; "
                f"use repro.create_trainer({algo!r}, corpus, ...) or import "
                f"from {module} directly",
                DeprecationWarning,
                stacklevel=2,
            )
        return getattr(import_module(module), name)
    raise AttributeError(f"module 'repro.baselines' has no attribute {name!r}")
