"""Baseline LDA systems the paper compares against (Section 7.2).

- :mod:`~repro.baselines.plain_cgs` — exact sequential CGS (oracle);
- :mod:`~repro.baselines.sparselda` — Yao et al. S/Q sequential sampler;
- :mod:`~repro.baselines.alias` — Vose alias tables (MH substrate);
- :mod:`~repro.baselines.warplda` — WarpLDA-style CPU MH baseline;
- :mod:`~repro.baselines.saberlda` — SaberLDA-style GPU baseline;
- :mod:`~repro.baselines.ldastar` — LDA*-style distributed baseline.
"""

from repro.baselines.alias import AliasTable, build_alias_columns
from repro.baselines.ldastar import LdaStarTrainer
from repro.baselines.lightlda import LightLdaTrainer
from repro.baselines.plain_cgs import PlainCgsModel, PlainCgsSampler
from repro.baselines.saberlda import SaberLdaTrainer, saberlda_config
from repro.baselines.sparselda import SparseLdaSampler
from repro.baselines.warplda import WarpLdaConfig, WarpLdaTrainer

__all__ = [
    "AliasTable",
    "build_alias_columns",
    "PlainCgsSampler",
    "PlainCgsModel",
    "SparseLdaSampler",
    "WarpLdaTrainer",
    "WarpLdaConfig",
    "SaberLdaTrainer",
    "saberlda_config",
    "LdaStarTrainer",
    "LightLdaTrainer",
]
