"""WarpLDA-style CPU baseline: Metropolis-Hastings with cycle proposals.

WarpLDA [10] is the paper's CPU comparison point (Table 4, Figures 7-8).
Its design: O(1)-per-token Metropolis-Hastings sampling with alternating
**document proposals** (``q(k) ~ theta[d,k] + alpha``, drawn by copying
the topic of a random token of the same document) and **word proposals**
(``q(k) ~ phi[k,v] + beta``, drawn from per-word alias tables), with
delayed count updates so each pass streams memory cache-efficiently.

Both passes are implemented for real (vectorised over all tokens), so the
convergence curve in Figure 8 comes from genuine MH dynamics — slightly
slower per iteration than exact CGS, as in the paper's plots.

Clock: per-token cost is a handful of *random* memory accesses; each
charges a cache line, discounted by the LLC model while the working set
fits (this is WarpLDA's cache-efficiency claim, and it erodes exactly as
Section 3.2 argues when data grows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.plain_cgs import PlainCgsModel
from repro.corpus.document import Corpus
from repro.core.trainer import IterationRecord
from repro.gpusim.cache import cpu_cache_bandwidth_factor
from repro.gpusim.clock import KernelCost, cpu_kernel_time
from repro.gpusim.platform import XEON_E5_2690_V4
from repro.gpusim.spec import CpuSpec

#: Random memory touches per token per MH pass (z of the proposal token,
#: two theta entries, two phi entries, a topic total).
RANDOM_ACCESSES_PER_PASS = 3.2
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class WarpLdaConfig:
    """Configuration of the WarpLDA baseline."""

    num_topics: int
    alpha: float | None = None
    beta: float | None = None
    mh_rounds: int = 1  # doc+word proposal pairs per token per iteration
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_topics < 2:
            raise ValueError("num_topics must be >= 2")
        if self.mh_rounds < 1:
            raise ValueError("mh_rounds must be >= 1")

    @property
    def effective_alpha(self) -> float:
        return self.alpha if self.alpha is not None else 50.0 / self.num_topics

    @property
    def effective_beta(self) -> float:
        return self.beta if self.beta is not None else 0.01


class WarpLdaTrainer:
    """MH-based CPU LDA trainer with a simulated CPU clock."""

    DESCRIPTION = "WarpLDA-style CPU Metropolis-Hastings baseline (cycle proposals)"

    def __init__(
        self,
        corpus: Corpus,
        config: WarpLdaConfig,
        cpu: CpuSpec = XEON_E5_2690_V4,
        working_set_override: float | None = None,
    ):
        """``working_set_override`` (bytes) prices the cache model as if
        the corpus were that large.  Benches use it so a scaled-down
        stand-in corpus is timed like the full-scale dataset it mimics
        (at small scale everything fits the LLC and the CPU would look
        unrealistically fast — the exact effect Section 3.2 describes)."""
        if working_set_override is not None and working_set_override <= 0:
            raise ValueError("working_set_override must be positive")
        self.corpus = corpus
        self.config = config
        self.cpu = cpu
        self.working_set_override = working_set_override
        self.rng = np.random.default_rng(config.seed)
        k = config.num_topics
        t = corpus.num_tokens
        self.doc_ids = corpus.token_doc_ids().astype(np.int64)
        self.word_ids = corpus.word_ids.astype(np.int64)
        self.doc_offsets = corpus.doc_offsets
        self.doc_lengths = corpus.doc_lengths().astype(np.int64)
        z = self.rng.integers(0, k, size=t)
        theta = np.zeros((corpus.num_docs, k), dtype=np.int64)
        phi = np.zeros((k, corpus.num_words), dtype=np.int64)
        np.add.at(theta, (self.doc_ids, z), 1)
        np.add.at(phi, (z, self.word_ids), 1)
        self.model = PlainCgsModel(
            z=z, theta=theta, phi=phi, topic_totals=phi.sum(axis=1),
            alpha=config.effective_alpha, beta=config.effective_beta,
        )
        self.history: list[IterationRecord] = []
        self._sim_time = 0.0
        self._iterations_done = 0

    # -- MH passes (vectorised, delayed updates) ----------------------------

    def _doc_proposal_pass(self) -> None:
        """Propose from q(k) ~ theta[d,k] + alpha for every token at once.

        Drawing from theta+alpha without materialising it: with prob
        ``alpha*K / (alpha*K + L_d)`` a uniform topic, otherwise the topic
        of a uniformly chosen token of the same document (whose topics
        *are* the theta counts).  Acceptance keeps only the phi/totals
        ratio — the theta terms cancel against the proposal.
        """
        m = self.model
        cfg = self.config
        t = m.z.shape[0]
        beta_v = cfg.effective_beta * self.corpus.num_words
        k = cfg.num_topics
        # proposal draw
        l_d = self.doc_lengths[self.doc_ids]
        smooth = self.rng.random(t) * (cfg.effective_alpha * k + l_d) < (
            cfg.effective_alpha * k
        )
        rand_pos = self.doc_offsets[self.doc_ids] + (
            self.rng.random(t) * l_d
        ).astype(np.int64)
        proposal = np.where(
            smooth,
            self.rng.integers(0, k, size=t),
            m.z[np.minimum(rand_pos, self.doc_offsets[self.doc_ids + 1] - 1)],
        )
        # acceptance ratio: [(phi[z',v]+b)(N_z+bV)] / [(phi[z,v]+b)(N_z'+bV)]
        num = (m.phi[proposal, self.word_ids] + cfg.effective_beta) * (
            m.topic_totals[m.z] + beta_v
        )
        den = (m.phi[m.z, self.word_ids] + cfg.effective_beta) * (
            m.topic_totals[proposal] + beta_v
        )
        accept = self.rng.random(t) * den < num
        self._apply(np.where(accept, proposal, m.z))

    def _word_proposal_pass(self) -> None:
        """Propose from q(k) ~ phi[k,v] + beta for every token at once.

        WarpLDA draws these from per-word alias tables rebuilt once per
        pass (delayed update).  The simulation draws from the *same
        distribution* with one vectorised search over per-word CDFs —
        O(1) alias lookups and CDF searches are interchangeable
        functionally (the alias substrate itself is tested in
        :mod:`repro.baselines.alias`); only the cost model speaks for the
        alias structure.  Acceptance keeps the theta/totals ratio.
        """
        m = self.model
        cfg = self.config
        t = m.z.shape[0]
        k = cfg.num_topics
        beta_v = cfg.effective_beta * self.corpus.num_words
        weights = m.phi.astype(np.float64) + cfg.effective_beta  # K x V
        cdf = np.cumsum(weights, axis=0)
        flat = (cdf / cdf[-1, :][None, :]).T.ravel()
        flat += np.repeat(np.arange(self.corpus.num_words, dtype=np.float64), k)
        u = self.rng.random(t)
        proposal = (
            np.searchsorted(flat, self.word_ids + u, side="right")
            - self.word_ids * k
        )
        proposal = np.clip(proposal, 0, k - 1)
        num = (m.theta[self.doc_ids, proposal] + cfg.effective_alpha) * (
            m.topic_totals[m.z] + beta_v
        )
        den = (m.theta[self.doc_ids, m.z] + cfg.effective_alpha) * (
            m.topic_totals[proposal] + beta_v
        )
        accept = self.rng.random(t) * den < num
        self._apply(np.where(accept, proposal, m.z))

    def _apply(self, z_new: np.ndarray) -> None:
        """Delayed update: reconcile counts with the new assignments."""
        m = self.model
        changed = z_new != m.z
        if np.any(changed):
            d = self.doc_ids[changed]
            v = self.word_ids[changed]
            zo = m.z[changed]
            zn = z_new[changed]
            np.subtract.at(m.theta, (d, zo), 1)
            np.add.at(m.theta, (d, zn), 1)
            np.subtract.at(m.phi, (zo, v), 1)
            np.add.at(m.phi, (zn, v), 1)
            k = self.config.num_topics
            m.topic_totals -= np.bincount(zo, minlength=k)
            m.topic_totals += np.bincount(zn, minlength=k)
        m.z = z_new.copy()

    # -- simulated clock ------------------------------------------------------

    def _iteration_seconds(self) -> float:
        """CPU time of one iteration under the cache-aware roofline."""
        t = self.corpus.num_tokens
        passes = 2 * self.config.mh_rounds
        if self.working_set_override is not None:
            working_set = self.working_set_override
        else:
            working_set = (
                self.model.phi.size * 4 + self.model.theta.size * 4 + t * 4
            )
        factor = cpu_cache_bandwidth_factor(self.cpu, working_set)
        cost = KernelCost(
            bytes_read=RANDOM_ACCESSES_PER_PASS * CACHE_LINE_BYTES * t * passes,
            bytes_written=8.0 * t * passes,
            flops=20.0 * t * passes,
        )
        # factor > 1 when the set fits in cache; clamp into the clock's domain.
        return cpu_kernel_time(self.cpu, cost.scaled(1.0 / min(factor, 8.0)))

    # -- public API -------------------------------------------------------------

    def train(
        self, num_iterations: int, compute_likelihood_every: int = 1
    ) -> list[IterationRecord]:
        """Run iterations; records use the simulated CPU clock."""
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        t = self.corpus.num_tokens
        for _ in range(num_iterations):
            it = self._iterations_done
            for _r in range(self.config.mh_rounds):
                self._doc_proposal_pass()
                self._word_proposal_pass()
            dur = self._iteration_seconds()
            self._sim_time += dur
            ll = None
            if compute_likelihood_every and (it + 1) % compute_likelihood_every == 0:
                ll = self.model.log_likelihood_per_token()
            self.history.append(
                IterationRecord(
                    iteration=it,
                    sim_seconds=dur,
                    cumulative_seconds=self._sim_time,
                    tokens_per_sec=t / dur,
                    log_likelihood_per_token=ll,
                    mean_kd=float(np.count_nonzero(self.model.theta) / self.model.theta.shape[0]),
                    p1_fraction=0.0,
                    changed_fraction=0.0,
                )
            )
            self._iterations_done += 1
        return self.history

    def average_tokens_per_sec(self, first_n: int | None = None) -> float:
        records = self.history if first_n is None else self.history[:first_n]
        if not records:
            raise ValueError("no iterations recorded yet")
        return float(np.mean([r.tokens_per_sec for r in records]))

    def describe(self) -> dict:
        """Identity and effective configuration (unified API contract)."""
        return {
            "description": self.DESCRIPTION,
            "num_topics": self.config.num_topics,
            "mh_rounds": self.config.mh_rounds,
            "alpha": self.config.effective_alpha,
            "beta": self.config.effective_beta,
            "cpu": self.cpu.name,
        }
