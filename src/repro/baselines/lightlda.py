"""LightLDA-style baseline: alias-table Metropolis-Hastings (Yuan et al. [35]).

LightLDA's contribution is the O(1) **alias-table word proposal**: for
each word, a Walker/Vose alias table over ``phi[:, v] + beta`` is built
once per iteration and then serves every token of the word in constant
time, amortizing the O(K) build.  Combined with the doc-proposal of the
cycle-proposal family, per-token cost is O(1).

This implementation genuinely builds and draws from Walker/Vose alias
tables — unlike the WarpLDA module (which draws the same distribution
via vectorised CDF search), so the alias substrate is exercised
end-to-end.  All present words' tables are built in one batched Vose
construction (:func:`repro.baselines.alias.build_alias_tables`), which
is bit-identical to building a per-word
:class:`~repro.baselines.alias.AliasTable` in a Python loop but removes
the O(V * K) interpreter work from the iteration hot path.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.alias import build_alias_tables
from repro.baselines.plain_cgs import PlainCgsModel
from repro.corpus.document import Corpus
from repro.core.trainer import IterationRecord
from repro.gpusim.cache import cpu_cache_bandwidth_factor
from repro.gpusim.clock import KernelCost, cpu_kernel_time
from repro.gpusim.platform import XEON_E5_2650_V3
from repro.gpusim.spec import CpuSpec


class LightLdaTrainer:
    """Alias-MH LDA trainer with a simulated CPU clock."""

    DESCRIPTION = "LightLDA-style alias-table MH baseline (O(1) word proposals)"

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        alpha: float | None = None,
        beta: float | None = None,
        seed: int = 0,
        cpu: CpuSpec = XEON_E5_2650_V3,
    ):
        if num_topics < 2:
            raise ValueError("num_topics must be >= 2")
        self.corpus = corpus
        self.k = num_topics
        self.alpha = alpha if alpha is not None else 50.0 / num_topics
        self.beta = beta if beta is not None else 0.01
        self.cpu = cpu
        self.rng = np.random.default_rng(seed)
        t = corpus.num_tokens
        self.doc_ids = corpus.token_doc_ids().astype(np.int64)
        self.word_ids = corpus.word_ids.astype(np.int64)
        self.doc_offsets = corpus.doc_offsets
        self.doc_lengths = corpus.doc_lengths().astype(np.int64)
        z = self.rng.integers(0, num_topics, size=t)
        theta = np.zeros((corpus.num_docs, num_topics), dtype=np.int64)
        phi = np.zeros((num_topics, corpus.num_words), dtype=np.int64)
        np.add.at(theta, (self.doc_ids, z), 1)
        np.add.at(phi, (z, self.word_ids), 1)
        self.model = PlainCgsModel(
            z=z, theta=theta, phi=phi, topic_totals=phi.sum(axis=1),
            alpha=self.alpha, beta=self.beta,
        )
        self.history: list[IterationRecord] = []
        self._sim_time = 0.0
        self._iterations_done = 0
        # word-sorted token index, fixed for the whole run
        self._order = np.argsort(self.word_ids, kind="stable")
        self._bounds = np.searchsorted(
            self.word_ids[self._order], np.arange(corpus.num_words + 1)
        )
        # present words + token -> present-word column map (also static)
        spans = np.diff(self._bounds)
        self._present = np.nonzero(spans)[0]
        self._wcol = np.repeat(
            np.arange(self._present.shape[0], dtype=np.int64),
            spans[self._present],
        )

    def _word_alias_pass(self) -> None:
        """Alias-table word proposals for all tokens, delayed updates.

        The per-word tables over ``phi[:, v] + beta`` are built for all
        present words at once (batched Vose, amortising the O(K) build),
        then each word's tokens draw from its table in O(1).  The RNG
        draw order (slots then coins, word by ascending id) matches the
        historical per-word ``AliasTable.sample`` loop exactly, so fixed
        seeds reproduce the same chain.
        """
        m = self.model
        beta_v = self.beta * self.corpus.num_words
        proposal = m.z.copy()
        present = self._present
        if present.size:
            # (Wp, K) rows == phi[:, v].astype(float64) + beta, bitwise.
            weights = m.phi[:, present].T.astype(np.float64)
            weights += self.beta
            prob, alias = build_alias_tables(weights)
            # Draw (slot, coin) pairs word by ascending id — the same RNG
            # stream as the historical per-word AliasTable.sample loop —
            # then resolve every token against its word's table at once.
            t = m.z.shape[0]
            slots = np.empty(t, dtype=np.int64)
            coins = np.empty(t, dtype=np.float64)
            bounds = self._bounds
            for v in present:
                lo, hi = bounds[v], bounds[v + 1]
                slots[lo:hi] = self.rng.integers(0, self.k, size=hi - lo)
                self.rng.random(out=coins[lo:hi])
            wcol = self._wcol
            proposal[self._order] = np.where(
                coins < prob[wcol, slots], slots, alias[wcol, slots]
            )
        # acceptance keeps the theta/totals ratio (phi terms cancel vs q)
        num = (m.theta[self.doc_ids, proposal] + self.alpha) * (
            m.topic_totals[m.z] + beta_v
        )
        den = (m.theta[self.doc_ids, m.z] + self.alpha) * (
            m.topic_totals[proposal] + beta_v
        )
        accept = self.rng.random(m.z.shape[0]) * den < num
        self._apply(np.where(accept, proposal, m.z))

    def _doc_proposal_pass(self) -> None:
        """Cycle partner: the doc proposal (as in the WarpLDA module)."""
        m = self.model
        t = m.z.shape[0]
        beta_v = self.beta * self.corpus.num_words
        l_d = self.doc_lengths[self.doc_ids]
        smooth = self.rng.random(t) * (self.alpha * self.k + l_d) < (
            self.alpha * self.k
        )
        rand_pos = self.doc_offsets[self.doc_ids] + (
            self.rng.random(t) * l_d
        ).astype(np.int64)
        proposal = np.where(
            smooth,
            self.rng.integers(0, self.k, size=t),
            m.z[np.minimum(rand_pos, self.doc_offsets[self.doc_ids + 1] - 1)],
        )
        num = (m.phi[proposal, self.word_ids] + self.beta) * (
            m.topic_totals[m.z] + beta_v
        )
        den = (m.phi[m.z, self.word_ids] + self.beta) * (
            m.topic_totals[proposal] + beta_v
        )
        accept = self.rng.random(t) * den < num
        self._apply(np.where(accept, proposal, m.z))

    def _apply(self, z_new: np.ndarray) -> None:
        m = self.model
        changed = z_new != m.z
        if np.any(changed):
            d = self.doc_ids[changed]
            v = self.word_ids[changed]
            zo = m.z[changed]
            zn = z_new[changed]
            np.subtract.at(m.theta, (d, zo), 1)
            np.add.at(m.theta, (d, zn), 1)
            np.subtract.at(m.phi, (zo, v), 1)
            np.add.at(m.phi, (zn, v), 1)
            m.topic_totals -= np.bincount(zo, minlength=self.k)
            m.topic_totals += np.bincount(zn, minlength=self.k)
        m.z = z_new.copy()

    def _iteration_seconds(self) -> float:
        """O(1)-per-token MH + O(V*K) alias rebuild, CPU roofline."""
        t = self.corpus.num_tokens
        build_bytes = 8.0 * self.k * self.corpus.num_words  # alias rebuild
        token_bytes = 2 * 3.0 * 64.0 * t  # 2 passes x ~3 cache lines
        working_set = self.model.phi.size * 4 + self.model.theta.size * 4 + t * 4
        factor = cpu_cache_bandwidth_factor(self.cpu, working_set)
        cost = KernelCost(
            bytes_read=build_bytes + token_bytes,
            bytes_written=8.0 * t,
            flops=30.0 * t,
        )
        return cpu_kernel_time(self.cpu, cost.scaled(1.0 / min(factor, 8.0)))

    def train(
        self, num_iterations: int, compute_likelihood_every: int = 1
    ) -> list[IterationRecord]:
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        t = self.corpus.num_tokens
        for _ in range(num_iterations):
            it = self._iterations_done
            self._doc_proposal_pass()
            self._word_alias_pass()
            dur = self._iteration_seconds()
            self._sim_time += dur
            ll = None
            if compute_likelihood_every and (it + 1) % compute_likelihood_every == 0:
                ll = self.model.log_likelihood_per_token()
            self.history.append(
                IterationRecord(
                    iteration=it,
                    sim_seconds=dur,
                    cumulative_seconds=self._sim_time,
                    tokens_per_sec=t / dur,
                    log_likelihood_per_token=ll,
                    mean_kd=float(
                        np.count_nonzero(self.model.theta) / self.model.theta.shape[0]
                    ),
                    p1_fraction=0.0,
                    changed_fraction=0.0,
                )
            )
            self._iterations_done += 1
        return self.history

    def average_tokens_per_sec(self, first_n: int | None = None) -> float:
        records = self.history if first_n is None else self.history[:first_n]
        if not records:
            raise ValueError("no iterations recorded yet")
        return float(np.mean([r.tokens_per_sec for r in records]))

    def describe(self) -> dict:
        """Identity and effective configuration (unified API contract)."""
        return {
            "description": self.DESCRIPTION,
            "num_topics": self.k,
            "alpha": self.alpha,
            "beta": self.beta,
            "cpu": self.cpu.name,
        }
