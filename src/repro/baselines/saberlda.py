"""SaberLDA-style single-GPU baseline (Li et al. [20]).

SaberLDA is the paper's GPU comparison point.  Its code is not public;
the paper cites its reported numbers (120 M tokens/s on NYTimes, GTX
1080).  Section 7.2 attributes CuLDA_CGS's advantage to: block-shared
p*(k) trees with shared-memory reuse, 16-bit data compression, and the
L1 routing of sparse-index loads — optimizations SaberLDA's published
design lacks in this combination.

The reproduction therefore models SaberLDA as the *same functional
sampler* (it is also sparsity-aware CGS) with those cost-model levers
turned off, on the GTX 1080 spec, single GPU only ("SaberLDA lacks
multi-GPU support").
"""

from __future__ import annotations

from repro.core.config import TrainerConfig
from repro.core.trainer import CuLdaTrainer
from repro.corpus.document import Corpus
from repro.gpusim.platform import GTX_1080_PASCAL
from repro.gpusim.spec import DeviceSpec


def saberlda_config(num_topics: int, seed: int = 0, **overrides) -> TrainerConfig:
    """A TrainerConfig expressing SaberLDA's design point.

    Single GPU, 32-bit model data (no Section 6.1.3 compression), no L1
    index routing.  The block-level word grouping (their "PWS" layout) is
    kept — SaberLDA does sort by word.
    """
    params = dict(
        num_topics=num_topics,
        num_gpus=1,
        chunks_per_gpu=1,
        compress=False,
        share_p2_tree=True,
        use_l1_for_indices=False,
        seed=seed,
    )
    params.update(overrides)
    if params["num_gpus"] != 1:
        raise ValueError("SaberLDA is single-GPU only (Section 7.2)")
    return TrainerConfig(**params)


class SaberLdaTrainer(CuLdaTrainer):
    """Single-GPU SaberLDA model: shared functional core, degraded costs."""

    DESCRIPTION = "SaberLDA-style single-GPU baseline (GTX 1080, no Section 6 extras)"

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        device_spec: DeviceSpec = GTX_1080_PASCAL,
        seed: int = 0,
        **config_overrides,
    ):
        config = saberlda_config(num_topics, seed=seed, **config_overrides)
        super().__init__(corpus, config, device_spec=device_spec)
