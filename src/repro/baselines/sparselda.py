"""SparseLDA-style sampler (Yao et al. [32]) — exact and word-batched.

The sparsity-aware S/Q decomposition the paper's own sampler builds on
(Section 6.1.1), in two execution modes:

- **exact** (``batch_words=False``, the default): the original
  *sequential CPU* form — per token, exact decrement -> S/Q bucket draw
  -> increment.  Unlike :mod:`repro.baselines.plain_cgs` the per-token
  work is ``O(Kd)`` for the sparse bucket, so this is also the oracle
  for the S/Q bucket logic itself: on identical state its conditional
  distribution equals the dense one exactly (tested).  The loop is
  hoisted (batched RNG, contiguous phi columns, exact incremental
  denominator, reused buffers) but **bit-identical** to the historical
  implementation under a fixed seed (tests/test_golden_regression.py).
- **word-batched** (``batch_words=True``): one vectorised pass over all
  tokens per sweep using the very kernel this repo reproduces
  (:func:`repro.core.sampler.sample_chunk` on a single whole-corpus
  chunk, backed by a reusable :class:`repro.perf.Workspace`).  Updates
  are applied at sweep granularity (chunk-snapshot semantics, exactly
  like one CuLDA iteration on one chunk), so the chain differs from the
  sequential mode draw-for-draw while targeting the same posterior.
  This is the mode the algorithm registry exposes by default — orders
  of magnitude faster in wall-clock (see BENCH_wallclock.json).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.plain_cgs import _SWEEP_BLOCK, PlainCgsModel
from repro.core.sampler import sample_chunk
from repro.core.sparse import from_assignments
from repro.corpus.document import Corpus
from repro.corpus.encoding import encode_chunk
from repro.corpus.partition import ChunkSpec
from repro.perf import Workspace


class SparseLdaSampler:
    """S/Q bucket sampler: sequential-exact or word-batched sweeps."""

    DESCRIPTION = "SparseLDA-style S/Q bucket sampler (Yao et al.)"

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        alpha: float | None = None,
        beta: float | None = None,
        seed: int = 0,
        batch_words: bool = False,
    ):
        if num_topics < 2:
            raise ValueError("num_topics must be >= 2")
        self.corpus = corpus
        self.k = num_topics
        self.alpha = alpha if alpha is not None else 50.0 / num_topics
        self.beta = beta if beta is not None else 0.01
        self.batch_words = bool(batch_words)
        self.rng = np.random.default_rng(seed)
        t = corpus.num_tokens
        self.doc_ids = corpus.token_doc_ids().astype(np.int64)
        self.word_ids = corpus.word_ids.astype(np.int64)
        z = self.rng.integers(0, num_topics, size=t)
        theta = np.zeros((corpus.num_docs, num_topics), dtype=np.int64)
        phi = np.zeros((num_topics, corpus.num_words), dtype=np.int64)
        np.add.at(theta, (self.doc_ids, z), 1)
        np.add.at(phi, (z, self.word_ids), 1)
        self.model = PlainCgsModel(
            z=z, theta=theta, phi=phi, topic_totals=phi.sum(axis=1),
            alpha=self.alpha, beta=self.beta,
        )
        #: per-sweep tally of draws resolved in the sparse bucket.
        self.last_p1_fraction = 0.0
        # word-batched substrate, built on first batched sweep
        self._chunk = None
        self._order = None
        self._workspace: Workspace | None = None

    def sweep(self) -> None:
        """One iteration over every token (mode set by ``batch_words``)."""
        if self.batch_words:
            self._sweep_batched()
        else:
            self._sweep_exact()

    # -- exact sequential mode --------------------------------------------

    def _sweep_exact(self) -> None:
        """Sequential pass; per token O(Kd) for p1, O(K) fallback for p2."""
        m = self.model
        k = self.k
        alpha, beta = self.alpha, self.beta
        beta_v = beta * self.corpus.num_words
        t = m.z.shape[0]
        p1_draws = 0
        # contiguous per-word columns; synced back to m.phi after the loop
        phi_t = np.ascontiguousarray(m.phi.T)
        theta = m.theta
        # scalar-only state lives in Python lists for the loop's duration
        # (scalar ndarray indexing is ~10x a list access); token-indexed
        # lists are materialised in bounded blocks so transient memory
        # stays O(block), not O(T).  Batched block draws consume the same
        # RNG stream as per-token scalar draws (bit-identical).
        totals = m.topic_totals.tolist()
        # denom[j] == totals[j] + beta_v, kept exact by scalar rewrites
        denom = np.add(m.topic_totals, beta_v, dtype=np.float64)
        p_star = np.empty(k, dtype=np.float64)
        cdf_k = np.empty(k, dtype=np.float64)
        for lo in range(0, t, _SWEEP_BLOCK):
            hi = min(lo + _SWEEP_BLOCK, t)
            # exactly two draws per token (bucket choice + in-bucket search)
            u_all = self.rng.random(2 * (hi - lo)).tolist()
            doc_ids = self.doc_ids[lo:hi].tolist()
            word_ids = self.word_ids[lo:hi].tolist()
            z = m.z[lo:hi].tolist()
            for i in range(hi - lo):
                d = doc_ids[i]
                v = word_ids[i]
                old = z[i]
                theta_d = theta[d]
                phi_col = phi_t[v]
                theta_d[old] -= 1
                phi_col[old] -= 1
                totals[old] -= 1
                denom[old] = totals[old] + beta_v

                np.add(phi_col, beta, out=p_star)
                np.divide(p_star, denom, out=p_star)
                nz = np.nonzero(theta_d)[0]  # the Kd support
                w1 = theta_d[nz] * p_star[nz]
                s = float(w1.sum())
                q = float(alpha * p_star.sum())
                u = u_all[2 * i]
                if u * (s + q) < s:
                    cdf = np.cumsum(w1)
                    j = int(np.searchsorted(cdf, u_all[2 * i + 1] * cdf[-1], side="right"))
                    new = int(nz[min(j, nz.size - 1)])
                    p1_draws += 1
                else:
                    np.cumsum(p_star, out=cdf_k)
                    j = int(np.searchsorted(cdf_k, u_all[2 * i + 1] * cdf_k[-1], side="right"))
                    new = min(j, k - 1)
                z[i] = new
                theta_d[new] += 1
                phi_col[new] += 1
                totals[new] += 1
                denom[new] = totals[new] + beta_v
            m.z[lo:hi] = z
        m.phi[...] = phi_t.T
        m.topic_totals[...] = totals
        self.last_p1_fraction = p1_draws / max(1, t)

    # -- word-batched mode -------------------------------------------------

    def _ensure_batched_substrate(self) -> None:
        if self._chunk is not None:
            return
        corpus = self.corpus
        spec = ChunkSpec(
            chunk_id=0,
            doc_lo=0,
            doc_hi=corpus.num_docs,
            token_lo=0,
            token_hi=corpus.num_tokens,
        )
        self._chunk = encode_chunk(corpus, spec)
        # chunk token order -> corpus token position (the same stable
        # word-first sort encode_chunk performs)
        self._order = np.argsort(self.word_ids, kind="stable")
        self._workspace = Workspace()

    def _sweep_batched(self) -> None:
        """One vectorised S/Q pass over the whole corpus as a single chunk.

        Counts are snapshotted at sweep start (with per-token exclusion
        handled inside the kernel) and updates applied at sweep end —
        the semantics of one CuLDA iteration with ``C = 1``.
        """
        self._ensure_batched_substrate()
        m = self.model
        chunk = self._chunk
        order = self._order
        k = self.k
        num_words = self.corpus.num_words
        z_chunk = m.z[order]
        theta = from_assignments(
            chunk.token_docs, z_chunk, chunk.num_local_docs, k
        )
        result = sample_chunk(
            chunk, z_chunk, theta, m.phi, m.topic_totals,
            alpha=self.alpha, beta=self.beta, rng=self.rng,
            workspace=self._workspace,
        )
        z_new = result.new_topics.astype(np.int64)
        m.z[order] = z_new
        m.phi[...] = np.bincount(
            z_new * num_words + chunk.token_words, minlength=k * num_words
        ).reshape(k, num_words)
        m.topic_totals[...] = m.phi.sum(axis=1)
        m.theta[...] = np.bincount(
            self.doc_ids * k + m.z, minlength=self.corpus.num_docs * k
        ).reshape(self.corpus.num_docs, k)
        stats = result.stats
        self.last_p1_fraction = (
            stats.num_p1_draws / stats.num_tokens if stats.num_tokens else 0.0
        )

    def train(self, num_iterations: int) -> list[float]:
        """Run sweeps; returns log-likelihood per token after each."""
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        out = []
        for _ in range(num_iterations):
            self.sweep()
            out.append(self.model.log_likelihood_per_token())
        return out

    def describe(self) -> dict:
        """Identity and effective configuration (unified API contract)."""
        return {
            "description": self.DESCRIPTION,
            "num_topics": self.k,
            "alpha": self.alpha,
            "beta": self.beta,
            "batch_words": self.batch_words,
        }

    def validate(self) -> None:
        """Invariant check: counts consistent with assignments."""
        m = self.model
        theta = np.zeros_like(m.theta)
        phi = np.zeros_like(m.phi)
        np.add.at(theta, (self.doc_ids, m.z), 1)
        np.add.at(phi, (m.z, self.word_ids), 1)
        if not (
            np.array_equal(theta, m.theta)
            and np.array_equal(phi, m.phi)
            and np.array_equal(phi.sum(axis=1), m.topic_totals)
        ):
            raise AssertionError("SparseLDA counts out of sync with assignments")
