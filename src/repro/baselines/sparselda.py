"""SparseLDA-style sequential sampler (Yao et al. [32]).

The sparsity-aware decomposition the paper's own sampler builds on
(Section 6.1.1), in its original *sequential CPU* form: per token, exact
decrement -> S/Q bucket draw -> increment.  Unlike
:mod:`repro.baselines.plain_cgs` the per-token work is ``O(Kd)`` for the
sparse bucket, so this is also the oracle for the S/Q bucket logic
itself: on identical state its conditional distribution equals the dense
one exactly (tested).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.plain_cgs import PlainCgsModel
from repro.corpus.document import Corpus


class SparseLdaSampler:
    """Sequential S/Q sampler with immediate count updates."""

    DESCRIPTION = "SparseLDA-style sequential S/Q bucket sampler (Yao et al.)"

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        alpha: float | None = None,
        beta: float | None = None,
        seed: int = 0,
    ):
        if num_topics < 2:
            raise ValueError("num_topics must be >= 2")
        self.corpus = corpus
        self.k = num_topics
        self.alpha = alpha if alpha is not None else 50.0 / num_topics
        self.beta = beta if beta is not None else 0.01
        self.rng = np.random.default_rng(seed)
        t = corpus.num_tokens
        self.doc_ids = corpus.token_doc_ids().astype(np.int64)
        self.word_ids = corpus.word_ids.astype(np.int64)
        z = self.rng.integers(0, num_topics, size=t)
        theta = np.zeros((corpus.num_docs, num_topics), dtype=np.int64)
        phi = np.zeros((num_topics, corpus.num_words), dtype=np.int64)
        np.add.at(theta, (self.doc_ids, z), 1)
        np.add.at(phi, (z, self.word_ids), 1)
        self.model = PlainCgsModel(
            z=z, theta=theta, phi=phi, topic_totals=phi.sum(axis=1),
            alpha=self.alpha, beta=self.beta,
        )
        #: per-sweep tally of draws resolved in the sparse bucket.
        self.last_p1_fraction = 0.0

    def sweep(self) -> None:
        """One iteration; per token O(Kd) for p1, O(K) fallback for p2."""
        m = self.model
        beta_v = self.beta * self.corpus.num_words
        p1_draws = 0
        for i in range(m.z.shape[0]):
            d = self.doc_ids[i]
            v = self.word_ids[i]
            old = m.z[i]
            m.theta[d, old] -= 1
            m.phi[old, v] -= 1
            m.topic_totals[old] -= 1

            denom = m.topic_totals + beta_v
            p_star = (m.phi[:, v] + self.beta) / denom
            nz = np.nonzero(m.theta[d])[0]  # the Kd support
            w1 = m.theta[d, nz] * p_star[nz]
            s = float(w1.sum())
            q = float(self.alpha * p_star.sum())
            u = self.rng.random()
            if u * (s + q) < s:
                cdf = np.cumsum(w1)
                j = int(np.searchsorted(cdf, self.rng.random() * cdf[-1], side="right"))
                new = int(nz[min(j, nz.size - 1)])
                p1_draws += 1
            else:
                cdf = np.cumsum(p_star)
                j = int(np.searchsorted(cdf, self.rng.random() * cdf[-1], side="right"))
                new = min(j, self.k - 1)
            m.z[i] = new
            m.theta[d, new] += 1
            m.phi[new, v] += 1
            m.topic_totals[new] += 1
        self.last_p1_fraction = p1_draws / max(1, m.z.shape[0])

    def train(self, num_iterations: int) -> list[float]:
        """Run sweeps; returns log-likelihood per token after each."""
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        out = []
        for _ in range(num_iterations):
            self.sweep()
            out.append(self.model.log_likelihood_per_token())
        return out

    def describe(self) -> dict:
        """Identity and effective configuration (unified API contract)."""
        return {
            "description": self.DESCRIPTION,
            "num_topics": self.k,
            "alpha": self.alpha,
            "beta": self.beta,
        }

    def validate(self) -> None:
        """Invariant check: counts consistent with assignments."""
        m = self.model
        theta = np.zeros_like(m.theta)
        phi = np.zeros_like(m.phi)
        np.add.at(theta, (self.doc_ids, m.z), 1)
        np.add.at(phi, (m.z, self.word_ids), 1)
        if not (
            np.array_equal(theta, m.theta)
            and np.array_equal(phi, m.phi)
            and np.array_equal(phi.sum(axis=1), m.topic_totals)
        ):
            raise AssertionError("SparseLDA counts out of sync with assignments")
