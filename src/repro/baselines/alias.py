"""Vose alias tables: O(1) categorical sampling after O(n) build.

Substrate for the WarpLDA-style Metropolis-Hastings baseline (word
proposals ``q(k) ~ phi[k,v] + beta`` are drawn from per-word alias tables
rebuilt once per iteration, as in the alias-method LDA lineage the paper
cites: LightLDA [35], WarpLDA [10]).
"""

from __future__ import annotations

import numpy as np


class AliasTable:
    """Walker/Vose alias table over non-negative weights.

    Build is fully vectorised (two-pointer partition over the normalised
    weights); sampling draws ``(slot, coin)`` pairs and resolves each in
    O(1).
    """

    __slots__ = ("prob", "alias", "_n", "total")

    def __init__(self, weights: np.ndarray):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite and non-negative")
        total = float(w.sum())
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self._n = n = w.size
        self.total = total
        scaled = w * (n / total)
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Leftovers are 1.0 up to floating error.
        for i in small + large:
            prob[i] = 1.0
            alias[i] = i
        self.prob = prob
        self.alias = alias

    @property
    def size(self) -> int:
        return self._n

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` indices with probability proportional to weight."""
        if size < 0:
            raise ValueError("size must be non-negative")
        slots = rng.integers(0, self._n, size=size)
        coins = rng.random(size)
        return np.where(coins < self.prob[slots], slots, self.alias[slots])

    def sample_with(self, slots: np.ndarray, coins: np.ndarray) -> np.ndarray:
        """Resolve pre-drawn (slot, coin) pairs — used for batched MH."""
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size and (slots.min() < 0 or slots.max() >= self._n):
            raise ValueError("slot index out of range")
        return np.where(np.asarray(coins) < self.prob[slots], slots, self.alias[slots])


def build_alias_columns(matrix: np.ndarray, offset: float) -> list[AliasTable]:
    """One alias table per column of ``matrix + offset`` (per-word tables)."""
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if offset < 0:
        raise ValueError("offset must be non-negative")
    return [AliasTable(matrix[:, j].astype(np.float64) + offset) for j in range(matrix.shape[1])]
