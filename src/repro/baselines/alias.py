"""Vose alias tables: O(1) categorical sampling after O(n) build.

Substrate for the WarpLDA-style Metropolis-Hastings baseline (word
proposals ``q(k) ~ phi[k,v] + beta`` are drawn from per-word alias tables
rebuilt once per iteration, as in the alias-method LDA lineage the paper
cites: LightLDA [35], WarpLDA [10]).
"""

from __future__ import annotations

import numpy as np


class AliasTable:
    """Walker/Vose alias table over non-negative weights.

    Build is fully vectorised (two-pointer partition over the normalised
    weights); sampling draws ``(slot, coin)`` pairs and resolves each in
    O(1).
    """

    __slots__ = ("prob", "alias", "_n", "total")

    def __init__(self, weights: np.ndarray):
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite and non-negative")
        total = float(w.sum())
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self._n = n = w.size
        self.total = total
        scaled = w * (n / total)
        prob = np.ones(n, dtype=np.float64)
        alias = np.arange(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = scaled[l] - (1.0 - scaled[s])
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Leftovers are 1.0 up to floating error.
        for i in small + large:
            prob[i] = 1.0
            alias[i] = i
        self.prob = prob
        self.alias = alias

    @property
    def size(self) -> int:
        return self._n

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` indices with probability proportional to weight."""
        if size < 0:
            raise ValueError("size must be non-negative")
        slots = rng.integers(0, self._n, size=size)
        coins = rng.random(size)
        return np.where(coins < self.prob[slots], slots, self.alias[slots])

    def sample_with(self, slots: np.ndarray, coins: np.ndarray) -> np.ndarray:
        """Resolve pre-drawn (slot, coin) pairs — used for batched MH."""
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size and (slots.min() < 0 or slots.max() >= self._n):
            raise ValueError("slot index out of range")
        return np.where(np.asarray(coins) < self.prob[slots], slots, self.alias[slots])


def build_alias_columns(matrix: np.ndarray, offset: float) -> list[AliasTable]:
    """One alias table per column of ``matrix + offset`` (per-word tables)."""
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if offset < 0:
        raise ValueError("offset must be non-negative")
    return [AliasTable(matrix[:, j].astype(np.float64) + offset) for j in range(matrix.shape[1])]


def build_alias_tables(weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Batched Vose build: one alias table per **row** of ``weights``.

    Returns ``(prob, alias)`` arrays of shape ``(W, n)`` such that row
    ``w`` is **bit-identical** to ``AliasTable(weights[w]).prob`` /
    ``.alias`` (asserted by tests/test_alias.py).  That holds because the
    scalar build is replayed exactly, just for all rows in lockstep:

    - per-row totals are pairwise sums over the contiguous last axis —
      the same reduction a 1-D ``w.sum()`` performs;
    - the small/large stacks start as ascending index lists and pop from
      the end, exactly like the scalar two-pointer loop;
    - each lockstep step performs the scalar loop's pop/assign/update
      for every still-active row at once, so the per-row sequence of
      (s, l) pairings — and therefore every float update — is identical.

    The Python-level work drops from O(W * n) list operations to at most
    ``n`` vectorised steps (a row pairs at most ``n - 1`` times), which
    is what makes per-iteration alias rebuilds affordable (LightLDA's
    O(1)-proposal precondition).
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[1] == 0:
        raise ValueError("weights must be a (W, n) array with n >= 1")
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite and non-negative")
    if not w.flags.c_contiguous:
        w = np.ascontiguousarray(w)
    num_rows, n = w.shape
    totals = w.sum(axis=1)
    if np.any(totals <= 0):
        raise ValueError("each row must have positive total weight")
    scaled = w * (n / totals)[:, None]

    prob = np.ones((num_rows, n), dtype=np.float64)
    alias = np.tile(np.arange(n, dtype=np.int64), (num_rows, 1))
    if num_rows == 0 or n == 1:
        return prob, alias

    # Stacks of small (< 1) and large (>= 1) entries per row: a stable
    # partition puts each stack's members first in ascending index order
    # (the scalar build's list-comprehension order); pops/pushes happen
    # at position ``top - 1`` / ``top``, i.e. at the end, like ``.pop()``
    # and ``.append()``.
    is_small = scaled < 1.0
    small_stack = np.argsort(~is_small, axis=1, kind="stable")
    large_stack = np.argsort(is_small, axis=1, kind="stable")
    small_top = is_small.sum(axis=1)
    large_top = n - small_top

    rows = np.arange(num_rows, dtype=np.int64)
    active = (small_top > 0) & (large_top > 0)
    while np.any(active):
        idx = rows[active]
        st = small_top[idx] - 1
        lt = large_top[idx] - 1
        s = small_stack[idx, st]
        l_ = large_stack[idx, lt]
        ps = scaled[idx, s]
        prob[idx, s] = ps
        alias[idx, s] = l_
        new_l = scaled[idx, l_] - (1.0 - ps)
        scaled[idx, l_] = new_l
        small_top[idx] = st  # s popped
        to_small = new_l < 1.0
        demoted = idx[to_small]
        if demoted.size:
            # l popped from large, pushed onto small.
            large_top[demoted] = lt[to_small]
            small_stack[demoted, small_top[demoted]] = l_[to_small]
            small_top[demoted] += 1
        # rows where l stays large: popped then pushed back — no change.
        active[idx] = (small_top[idx] > 0) & (large_top[idx] > 0)
    # Leftover stack members keep their init (prob 1, alias identity),
    # matching the scalar build's leftover loop.
    return prob, alias
