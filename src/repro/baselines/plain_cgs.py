"""Exact sequential Collapsed Gibbs Sampling — the correctness oracle.

The textbook O(K)-per-token CGS of Section 2.1 (Eq. 1): walk the tokens
in order; for each, remove its count, compute the full dense conditional,
draw, and re-add.  No staleness, no decomposition, no approximation —
this is the distribution every optimized sampler must agree with, and the
reference the statistical tests compare against.

Intentionally simple and slow; use only on small corpora.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

from repro.corpus.document import Corpus


@dataclass
class PlainCgsModel:
    """Dense state of the exact sampler."""

    z: np.ndarray  # int64[T] topic per token (document-major corpus order)
    theta: np.ndarray  # int64[D, K]
    phi: np.ndarray  # int64[K, V]
    topic_totals: np.ndarray  # int64[K]
    alpha: float
    beta: float

    @property
    def num_topics(self) -> int:
        return int(self.theta.shape[1])

    def log_likelihood_per_token(self) -> float:
        """Joint log p(w, z) / T — same definition as the core metric."""
        k = self.num_topics
        v = self.phi.shape[1]
        a, b = self.alpha, self.beta
        word = float(k * gammaln(v * b))
        word += float(np.sum(gammaln(self.phi[self.phi > 0] + b) - gammaln(b)))
        word -= float(np.sum(gammaln(self.topic_totals + v * b)))
        doc = float(self.theta.shape[0] * gammaln(k * a))
        doc += float(np.sum(gammaln(self.theta[self.theta > 0] + a) - gammaln(a)))
        doc -= float(np.sum(gammaln(self.theta.sum(axis=1) + k * a)))
        return (word + doc) / self.z.shape[0]


class PlainCgsSampler:
    """Exact sequential CGS trainer.

    Parameters mirror :class:`~repro.core.config.TrainerConfig` defaults
    (``alpha = 50/K``, ``beta = 0.01``).
    """

    DESCRIPTION = "Exact sequential collapsed Gibbs sampling (correctness oracle)"

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        alpha: float | None = None,
        beta: float | None = None,
        seed: int = 0,
    ):
        if num_topics < 2:
            raise ValueError("num_topics must be >= 2")
        self.corpus = corpus
        self.k = num_topics
        self.alpha = alpha if alpha is not None else 50.0 / num_topics
        self.beta = beta if beta is not None else 0.01
        self.rng = np.random.default_rng(seed)
        t = corpus.num_tokens
        self.doc_ids = corpus.token_doc_ids().astype(np.int64)
        self.word_ids = corpus.word_ids.astype(np.int64)
        z = self.rng.integers(0, num_topics, size=t)
        theta = np.zeros((corpus.num_docs, num_topics), dtype=np.int64)
        phi = np.zeros((num_topics, corpus.num_words), dtype=np.int64)
        np.add.at(theta, (self.doc_ids, z), 1)
        np.add.at(phi, (z, self.word_ids), 1)
        self.model = PlainCgsModel(
            z=z,
            theta=theta,
            phi=phi,
            topic_totals=phi.sum(axis=1),
            alpha=self.alpha,
            beta=self.beta,
        )

    def sweep(self) -> None:
        """One full CGS iteration: every token resampled, exactly."""
        m = self.model
        beta_v = self.beta * self.corpus.num_words
        for i in range(m.z.shape[0]):
            d = self.doc_ids[i]
            v = self.word_ids[i]
            old = m.z[i]
            m.theta[d, old] -= 1
            m.phi[old, v] -= 1
            m.topic_totals[old] -= 1
            p = (m.theta[d] + self.alpha) * (m.phi[:, v] + self.beta)
            p /= m.topic_totals + beta_v
            cdf = np.cumsum(p)
            new = int(np.searchsorted(cdf, self.rng.random() * cdf[-1], side="right"))
            new = min(new, self.k - 1)
            m.z[i] = new
            m.theta[d, new] += 1
            m.phi[new, v] += 1
            m.topic_totals[new] += 1

    def train(self, num_iterations: int) -> list[float]:
        """Run sweeps; returns log-likelihood per token after each."""
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        out = []
        for _ in range(num_iterations):
            self.sweep()
            out.append(self.model.log_likelihood_per_token())
        return out

    def describe(self) -> dict:
        """Identity and effective configuration (unified API contract)."""
        return {
            "description": self.DESCRIPTION,
            "num_topics": self.k,
            "alpha": self.alpha,
            "beta": self.beta,
        }

    def validate(self) -> None:
        """Invariant check: counts consistent with assignments."""
        m = self.model
        theta = np.zeros_like(m.theta)
        phi = np.zeros_like(m.phi)
        np.add.at(theta, (self.doc_ids, m.z), 1)
        np.add.at(phi, (m.z, self.word_ids), 1)
        if not (
            np.array_equal(theta, m.theta)
            and np.array_equal(phi, m.phi)
            and np.array_equal(phi.sum(axis=1), m.topic_totals)
        ):
            raise AssertionError("plain CGS counts out of sync with assignments")
