"""Exact sequential Collapsed Gibbs Sampling — the correctness oracle.

The textbook O(K)-per-token CGS of Section 2.1 (Eq. 1): walk the tokens
in order; for each, remove its count, compute the full dense conditional,
draw, and re-add.  No staleness, no decomposition, no approximation —
this is the distribution every optimized sampler must agree with, and the
reference the statistical tests compare against.

Intentionally simple and slow; use only on small corpora.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

from repro.corpus.document import Corpus
from repro.perf import counts_of_counts_lngamma

#: Tokens per block when materialising per-token Python lists in the
#: sequential sweeps — bounds transient memory at O(block), not O(T).
_SWEEP_BLOCK = 1 << 20


@dataclass
class PlainCgsModel:
    """Dense state of the exact sampler."""

    z: np.ndarray  # int64[T] topic per token (document-major corpus order)
    theta: np.ndarray  # int64[D, K]
    phi: np.ndarray  # int64[K, V]
    topic_totals: np.ndarray  # int64[K]
    alpha: float
    beta: float

    @property
    def num_topics(self) -> int:
        return int(self.theta.shape[1])

    def log_likelihood_per_token(self) -> float:
        """Joint log p(w, z) / T — same definition as the core metric.

        Count terms are evaluated through the cached ``lnG(n + offset)``
        tables (see :mod:`repro.perf.tables`): counts-of-counts binning
        replaces a ``gammaln`` call per non-zero entry.
        """
        k = self.num_topics
        v = self.phi.shape[1]
        a, b = self.alpha, self.beta
        word = float(k * gammaln(v * b))
        word += counts_of_counts_lngamma(np.bincount(self.phi.reshape(-1)), b)
        word -= float(np.sum(gammaln(self.topic_totals + v * b)))
        doc = float(self.theta.shape[0] * gammaln(k * a))
        doc += counts_of_counts_lngamma(np.bincount(self.theta.reshape(-1)), a)
        doc -= float(np.sum(gammaln(self.theta.sum(axis=1) + k * a)))
        return (word + doc) / self.z.shape[0]


class PlainCgsSampler:
    """Exact sequential CGS trainer.

    Parameters mirror :class:`~repro.core.config.TrainerConfig` defaults
    (``alpha = 50/K``, ``beta = 0.01``).
    """

    DESCRIPTION = "Exact sequential collapsed Gibbs sampling (correctness oracle)"

    def __init__(
        self,
        corpus: Corpus,
        num_topics: int,
        alpha: float | None = None,
        beta: float | None = None,
        seed: int = 0,
    ):
        if num_topics < 2:
            raise ValueError("num_topics must be >= 2")
        self.corpus = corpus
        self.k = num_topics
        self.alpha = alpha if alpha is not None else 50.0 / num_topics
        self.beta = beta if beta is not None else 0.01
        self.rng = np.random.default_rng(seed)
        t = corpus.num_tokens
        self.doc_ids = corpus.token_doc_ids().astype(np.int64)
        self.word_ids = corpus.word_ids.astype(np.int64)
        z = self.rng.integers(0, num_topics, size=t)
        theta = np.zeros((corpus.num_docs, num_topics), dtype=np.int64)
        phi = np.zeros((num_topics, corpus.num_words), dtype=np.int64)
        np.add.at(theta, (self.doc_ids, z), 1)
        np.add.at(phi, (z, self.word_ids), 1)
        self.model = PlainCgsModel(
            z=z,
            theta=theta,
            phi=phi,
            topic_totals=phi.sum(axis=1),
            alpha=self.alpha,
            beta=self.beta,
        )

    def sweep(self) -> None:
        """One full CGS iteration: every token resampled, exactly.

        The loop is unavoidably sequential (each draw sees every earlier
        update), but its per-token invariants are hoisted: the token's
        randoms are pre-drawn in one batch (same stream as per-token
        draws), ``phi`` columns are walked through a contiguous ``(V, K)``
        transpose, the ``totals + beta*V`` denominator is maintained by
        two exact scalar writes instead of a K-vector rebuild, and the
        conditional/CDF buffers are reused across tokens.  Bit-identical
        to the historical per-token-allocating loop under a fixed seed
        (tests/test_golden_regression.py).
        """
        m = self.model
        k = self.k
        alpha, beta = self.alpha, self.beta
        beta_v = beta * self.corpus.num_words
        t = m.z.shape[0]
        # contiguous per-word columns; synced back to m.phi after the loop
        phi_t = np.ascontiguousarray(m.phi.T)
        theta = m.theta
        # scalar-only state lives in Python lists for the loop's duration
        # (scalar ndarray indexing is ~10x a list access); token-indexed
        # lists are materialised in bounded blocks so transient memory
        # stays O(block), not O(T).  Batched block draws consume the same
        # RNG stream as per-token scalar draws (bit-identical).
        totals = m.topic_totals.tolist()
        # denom[j] == totals[j] + beta_v, kept exact by scalar rewrites
        denom = np.add(m.topic_totals, beta_v, dtype=np.float64)
        p = np.empty(k, dtype=np.float64)
        tmp = np.empty(k, dtype=np.float64)
        cdf = np.empty(k, dtype=np.float64)
        for lo in range(0, t, _SWEEP_BLOCK):
            hi = min(lo + _SWEEP_BLOCK, t)
            u_all = self.rng.random(hi - lo).tolist()
            doc_ids = self.doc_ids[lo:hi].tolist()
            word_ids = self.word_ids[lo:hi].tolist()
            z = m.z[lo:hi].tolist()
            for i in range(hi - lo):
                d = doc_ids[i]
                v = word_ids[i]
                old = z[i]
                theta_d = theta[d]
                phi_col = phi_t[v]
                theta_d[old] -= 1
                phi_col[old] -= 1
                totals[old] -= 1
                denom[old] = totals[old] + beta_v
                np.add(theta_d, alpha, out=p)
                np.add(phi_col, beta, out=tmp)
                np.multiply(p, tmp, out=p)
                np.divide(p, denom, out=p)
                np.cumsum(p, out=cdf)
                new = int(np.searchsorted(cdf, u_all[i] * cdf[-1], side="right"))
                if new >= k:
                    new = k - 1
                z[i] = new
                theta_d[new] += 1
                phi_col[new] += 1
                totals[new] += 1
                denom[new] = totals[new] + beta_v
            m.z[lo:hi] = z
        m.phi[...] = phi_t.T
        m.topic_totals[...] = totals

    def train(self, num_iterations: int) -> list[float]:
        """Run sweeps; returns log-likelihood per token after each."""
        if num_iterations < 0:
            raise ValueError("num_iterations must be non-negative")
        out = []
        for _ in range(num_iterations):
            self.sweep()
            out.append(self.model.log_likelihood_per_token())
        return out

    def describe(self) -> dict:
        """Identity and effective configuration (unified API contract)."""
        return {
            "description": self.DESCRIPTION,
            "num_topics": self.k,
            "alpha": self.alpha,
            "beta": self.beta,
        }

    def validate(self) -> None:
        """Invariant check: counts consistent with assignments."""
        m = self.model
        theta = np.zeros_like(m.theta)
        phi = np.zeros_like(m.phi)
        np.add.at(theta, (self.doc_ids, m.z), 1)
        np.add.at(phi, (m.z, self.word_ids), 1)
        if not (
            np.array_equal(theta, m.theta)
            and np.array_equal(phi, m.phi)
            and np.array_equal(phi.sum(axis=1), m.topic_totals)
        ):
            raise AssertionError("plain CGS counts out of sync with assignments")
